#include "workload/scenario.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdo::workload {

namespace {

/// Network draws + derived workload seed, shared by build()/build_sparse()
/// so both consume the scenario RNG identically.
model::ProblemInstance build_skeleton(const PaperScenario& s,
                                      WorkloadOptions& wl) {
  MDO_REQUIRE(s.num_sbs > 0 && s.num_contents > 0 && s.classes_per_sbs > 0,
              "scenario dimensions must be positive");
  MDO_REQUIRE(s.omega_min >= 0.0 && s.omega_min <= s.omega_max,
              "omega range must satisfy 0 <= min <= max");
  MDO_REQUIRE(s.omega_sbs_factor >= 0.0, "omega_sbs_factor must be >= 0");
  MDO_REQUIRE(s.omega_neigh_factor >= 0.0, "omega_neigh_factor must be >= 0");
  MDO_REQUIRE(s.inter_sbs_bandwidth >= 0.0,
              "inter_sbs_bandwidth must be >= 0");
  const bool collaborative =
      s.neighbor_topology != NeighborTopologyKind::kNone;

  Rng rng(s.seed);
  model::NetworkConfig config;
  config.num_contents = s.num_contents;
  config.sbs.reserve(s.num_sbs);
  for (std::size_t n = 0; n < s.num_sbs; ++n) {
    model::SbsConfig sbs;
    sbs.cache_capacity = s.cache_capacity;
    sbs.bandwidth = s.bandwidth;
    sbs.replacement_beta = s.beta;
    sbs.classes.reserve(s.classes_per_sbs);
    for (std::size_t m = 0; m < s.classes_per_sbs; ++m) {
      model::MuClass mu;
      mu.omega_bs = rng.uniform(s.omega_min, s.omega_max);
      mu.omega_sbs = s.omega_sbs_factor * mu.omega_bs;
      // Derived, no extra RNG draws: the kNone stream stays untouched.
      mu.omega_neigh = collaborative ? s.omega_neigh_factor * mu.omega_bs : 0.0;
      sbs.classes.push_back(mu);
    }
    config.sbs.push_back(std::move(sbs));
  }
  config.validate();

  wl = s.workload;
  // Derive the trace seed from the scenario seed so changing `seed` changes
  // both the MU-class draws and the demand trace coherently.
  wl.seed = rng();

  // Topology AFTER the trace-seed draw: kNone consumes nothing, so the
  // baseline MU-class/demand stream is identical with the knobs absent;
  // only kRandomGeometric draws (one value, for the SBS drop positions).
  switch (s.neighbor_topology) {
    case NeighborTopologyKind::kNone:
      break;
    case NeighborTopologyKind::kRing:
      config.topology = model::ring_topology(s.num_sbs, s.inter_sbs_bandwidth);
      break;
    case NeighborTopologyKind::kGrid:
      config.topology =
          model::grid_topology(s.num_sbs, s.grid_cols, s.inter_sbs_bandwidth);
      break;
    case NeighborTopologyKind::kRandomGeometric:
      config.topology = model::random_geometric_topology(
          s.num_sbs, s.geo_radius, s.inter_sbs_bandwidth, rng());
      break;
  }
  config.topology.validate(s.num_sbs);

  model::ProblemInstance instance;
  instance.config = std::move(config);
  instance.initial_cache = model::CacheState(instance.config);
  return instance;
}

}  // namespace

model::ProblemInstance PaperScenario::build() const {
  WorkloadOptions wl;
  model::ProblemInstance instance = build_skeleton(*this, wl);
  instance.demand = generate_demand(instance.config, horizon, wl);
  instance.validate();
  return instance;
}

model::ProblemInstance PaperScenario::build_sparse() const {
  WorkloadOptions wl;
  model::ProblemInstance instance = build_skeleton(*this, wl);
  instance.sparse_demand = generate_sparse_demand(instance.config, horizon, wl);
  instance.use_sparse_demand = true;
  instance.validate();
  return instance;
}

}  // namespace mdo::workload
