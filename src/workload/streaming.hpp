// Slot-at-a-time streaming trace ingestion.
//
// The batch loaders in trace_io.hpp materialize the whole trace before the
// first slot can be simulated — fine for the paper's T = 500 horizons,
// prohibitive for measured traces with 10^7-10^8 requests. The streaming
// reader parses the same CSV format incrementally and yields one
// SparseSlotDemand per pull, so a run's peak memory is O(lookahead window),
// independent of the trace length (see DESIGN.md, "Streaming memory
// model"). sim/streaming_run.hpp drives a controller directly off this
// reader.
//
// Contract differences from the batch loaders (both are validated):
//  - Rows must arrive in non-decreasing slot order (any order of
//    (sbs,class,content) within a slot is fine). An out-of-order slot is a
//    file-level error — the already-yielded slots cannot be amended — and
//    is never skippable.
//  - Duplicate detection is scoped to the current slot; the batch loaders
//    detect duplicates across the whole file. With in-order input the two
//    behave identically.
// Empty slots between populated ones are yielded as all-zero slots, so the
// sequence of yields is exactly load_sparse_trace_csv()'s slot sequence.
#pragma once

#include <fstream>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "model/network.hpp"
#include "model/sparse_demand.hpp"
#include "workload/trace_parse.hpp"

namespace mdo::workload {

struct StreamingTraceOptions {
  /// Drop entries with rate < min_rate at ingest (same truncation knob as
  /// load_sparse_trace_csv).
  double min_rate = 0.0;
  /// Record-level corruption budget, shared across the whole file — the
  /// same semantics as TraceLoadOptions::max_bad_records.
  std::size_t max_bad_records = 0;
};

/// Incremental reader for the trace CSV format. Construct, then pull slots
/// with next() until it returns nullopt. Throws InvalidArgument on the
/// same failures as the batch loaders (plus out-of-order slots); a bounded
/// number of record-level failures can be skipped via max_bad_records.
class StreamingTraceReader {
 public:
  /// Reads from an externally-owned stream (must outlive the reader).
  StreamingTraceReader(std::istream& is, const model::NetworkConfig& config,
                       StreamingTraceOptions options = {});
  /// Opens and owns the file at `path`.
  StreamingTraceReader(const std::string& path,
                       const model::NetworkConfig& config,
                       StreamingTraceOptions options = {});

  StreamingTraceReader(const StreamingTraceReader&) = delete;
  StreamingTraceReader& operator=(const StreamingTraceReader&) = delete;

  /// Yields the demand of slot `slots_yielded()` and advances, or nullopt
  /// after the last populated slot. The first nullopt is sticky.
  std::optional<model::SparseSlotDemand> next();

  /// Slots yielded so far == the index the next() call will yield.
  std::size_t slots_yielded() const { return next_slot_; }
  /// Malformed rows skipped so far (<= max_bad_records).
  std::size_t skipped_records() const { return skipped_; }
  /// Non-zero entries yielded so far (after min_rate truncation).
  std::size_t entries_yielded() const { return entries_yielded_; }

 private:
  void read_header();
  /// Parses rows until pending_ holds a row of a later slot than
  /// `current`, or the file is exhausted. Valid rows of slot `current`
  /// land in slot_entries_.
  void fill_slot(std::size_t current);
  /// Refills pending_ with the next valid data row; consumes the skip
  /// budget on record-level failures. Leaves pending_ empty at EOF.
  void advance_pending();

  std::ifstream file_;   // backing storage for the path constructor
  std::istream* is_;     // the stream actually read (never null)
  const model::NetworkConfig* config_;
  StreamingTraceOptions options_;

  std::size_t line_number_ = 1;  // the header was line 1
  std::size_t next_slot_ = 0;
  std::size_t skipped_ = 0;
  std::size_t entries_yielded_ = 0;
  std::size_t last_slot_seen_ = 0;  // order guard (valid once saw_data_)
  bool saw_data_ = false;      // at least one valid row anywhere
  bool exhausted_ = false;     // EOF reached and pending_ drained
  std::optional<detail::TraceEntry> pending_;  // first row not yet consumed
  std::size_t pending_line_ = 0;               // its line number
  std::vector<detail::TraceEntry> slot_entries_;
  /// Duplicate guard for the slot being filled; cleared on slot advance.
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen_;
};

}  // namespace mdo::workload
