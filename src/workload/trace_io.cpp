#include "workload/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mdo::workload {

namespace {

constexpr std::array<const char*, 5> kFieldNames = {"slot", "sbs", "class",
                                                    "content", "rate"};

[[noreturn]] void fail_field(std::size_t line_number, std::size_t field,
                             const std::string& token,
                             const std::string& reason) {
  std::ostringstream os;
  os << "trace line " << line_number << ", field '" << kFieldNames[field]
     << "': " << reason << " (got \"" << token << "\")";
  throw InvalidArgument(os.str());
}

/// Splits a data row into exactly 5 comma-separated tokens.
std::array<std::string, 5> split_row(const std::string& line,
                                     std::size_t line_number) {
  std::array<std::string, 5> tokens;
  std::size_t start = 0;
  for (std::size_t field = 0; field < tokens.size(); ++field) {
    const bool last = field + 1 == tokens.size();
    const std::size_t comma = line.find(',', start);
    if (last != (comma == std::string::npos)) {
      throw InvalidArgument("trace line " + std::to_string(line_number) +
                            ": expected 5 comma-separated fields "
                            "(slot,sbs,class,content,rate): " +
                            line);
    }
    tokens[field] = last ? line.substr(start) : line.substr(start, comma - start);
    start = comma + 1;
  }
  return tokens;
}

std::size_t parse_index(const std::string& token, std::size_t line_number,
                        std::size_t field) {
  if (token.empty()) fail_field(line_number, field, token, "empty field");
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception&) {
    fail_field(line_number, field, token, "not a non-negative integer");
  }
  if (consumed != token.size() || token.front() == '-') {
    fail_field(line_number, field, token, "not a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

double parse_rate(const std::string& token, std::size_t line_number,
                  std::size_t field) {
  if (token.empty()) fail_field(line_number, field, token, "empty field");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail_field(line_number, field, token, "not a number");
  }
  if (consumed != token.size()) {
    fail_field(line_number, field, token, "not a number");
  }
  if (!std::isfinite(value)) {
    fail_field(line_number, field, token, "rate must be finite");
  }
  if (value < 0.0) {
    fail_field(line_number, field, token, "rate must be >= 0");
  }
  return value;
}

struct Entry {
  std::size_t t, n, m, k;
  double rate;
};

/// Shared row parser: header + data rows + shape/duplicate/stream checks.
/// Returns the entries in file order plus the largest slot index seen.
/// Record-level failures consume options.max_bad_records before throwing;
/// file-level failures (header, stream, empty file) always throw.
std::pair<std::vector<Entry>, std::size_t> parse_trace_rows(
    std::istream& is, const model::NetworkConfig& config,
    const TraceLoadOptions& options) {
  config.validate();
  std::string line;
  MDO_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace file is empty");
  MDO_REQUIRE(line.rfind("slot,sbs,class,content,rate", 0) == 0,
              "unexpected trace header: " + line);

  std::vector<Entry> entries;
  std::set<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>>
      seen;
  std::size_t max_slot = 0;
  std::size_t line_number = 1;
  std::size_t skipped = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      const auto tokens = split_row(line, line_number);
      Entry entry{};
      entry.t = parse_index(tokens[0], line_number, 0);
      entry.n = parse_index(tokens[1], line_number, 1);
      entry.m = parse_index(tokens[2], line_number, 2);
      entry.k = parse_index(tokens[3], line_number, 3);
      entry.rate = parse_rate(tokens[4], line_number, 4);
      if (entry.n >= config.num_sbs()) {
        fail_field(line_number, 1, tokens[1], "SBS index out of range");
      }
      if (entry.m >= config.sbs[entry.n].num_classes()) {
        fail_field(line_number, 2, tokens[2], "class index out of range");
      }
      if (entry.k >= config.num_contents) {
        fail_field(line_number, 3, tokens[3], "content index out of range");
      }
      MDO_REQUIRE(seen.insert({entry.t, entry.n, entry.m, entry.k}).second,
                  "duplicate (slot,sbs,class,content) entry at line " +
                      std::to_string(line_number));
      max_slot = std::max(max_slot, entry.t);
      entries.push_back(entry);
    } catch (const InvalidArgument& e) {
      // Over budget the original record error propagates — the caller sees
      // exactly what was wrong with the first unskippable row.
      if (skipped >= options.max_bad_records) throw;
      ++skipped;
      MDO_WARN("skipping bad trace record (" << skipped << "/"
                                             << options.max_bad_records
                                             << "): " << e.what());
    }
  }
  // getline() ends on either EOF or a hard read error; only the former means
  // we actually saw the whole file (a truncated read must not silently yield
  // a shorter trace).
  MDO_REQUIRE(is.eof(), "stream failure while reading trace (truncated?)");
  MDO_REQUIRE(!entries.empty(), "trace file has no data rows");
  if (options.skipped_records != nullptr) *options.skipped_records = skipped;
  return {std::move(entries), max_slot};
}

}  // namespace

void save_trace_csv(std::ostream& os, const model::DemandTrace& trace) {
  os << "slot,sbs,class,content,rate\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const auto& slot = trace.slot(t);
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const auto& demand = slot[n];
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (std::size_t k = 0; k < demand.num_contents(); ++k) {
          const double rate = demand.at(m, k);
          if (rate == 0.0) continue;
          os << t << ',' << n << ',' << m << ',' << k << ',' << rate << '\n';
        }
      }
    }
  }
  // A full disk or a broken pipe surfaces as a failed stream, not as an
  // exception — check before declaring the trace saved.
  MDO_REQUIRE(static_cast<bool>(os),
              "stream failure while writing trace (disk full?)");
}

void save_trace_csv(const std::string& path, const model::DemandTrace& trace) {
  std::ofstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  save_trace_csv(file, trace);
  file.flush();
  MDO_REQUIRE(static_cast<bool>(file),
              "stream failure while writing trace file: " + path);
}

model::DemandTrace load_trace_csv(std::istream& is,
                                  const model::NetworkConfig& config,
                                  const TraceLoadOptions& options) {
  auto [entries, max_slot] = parse_trace_rows(is, config, options);

  model::DemandTrace trace;
  for (std::size_t t = 0; t <= max_slot; ++t) {
    trace.push_back(model::make_zero_slot_demand(config));
  }
  for (const auto& entry : entries) {
    trace.slot(entry.t)[entry.n].at(entry.m, entry.k) = entry.rate;
  }
  trace.validate(config);
  return trace;
}

model::DemandTrace load_trace_csv(const std::string& path,
                                  const model::NetworkConfig& config,
                                  const TraceLoadOptions& options) {
  std::ifstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  return load_trace_csv(file, config, options);
}

void save_trace_csv(std::ostream& os, const model::SparseDemandTrace& trace) {
  os << "slot,sbs,class,content,rate\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const auto& slot = trace.slot(t);
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const auto& demand = slot[n];
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (const auto* it = demand.row_begin(m); it != demand.row_end(m);
             ++it) {
          os << t << ',' << n << ',' << m << ',' << it->content << ','
             << it->rate << '\n';
        }
      }
    }
  }
  MDO_REQUIRE(static_cast<bool>(os),
              "stream failure while writing trace (disk full?)");
}

void save_trace_csv(const std::string& path,
                    const model::SparseDemandTrace& trace) {
  std::ofstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  save_trace_csv(file, trace);
  file.flush();
  MDO_REQUIRE(static_cast<bool>(file),
              "stream failure while writing trace file: " + path);
}

model::SparseDemandTrace load_sparse_trace_csv(
    std::istream& is, const model::NetworkConfig& config, double min_rate,
    const TraceLoadOptions& options) {
  MDO_REQUIRE(std::isfinite(min_rate) && min_rate >= 0.0,
              "min_rate must be finite and non-negative");
  auto [entries, max_slot] = parse_trace_rows(is, config, options);

  // CSR append wants (t, n, m, k) lexicographic order; the file may hold
  // rows in any order (stable_sort is overkill — duplicates were rejected).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.t, a.n, a.m, a.k) <
                     std::tie(b.t, b.n, b.m, b.k);
            });

  model::SparseDemandTrace trace;
  std::size_t cursor = 0;
  for (std::size_t t = 0; t <= max_slot; ++t) {
    model::SparseSlotDemand slot;
    slot.reserve(config.num_sbs());
    for (std::size_t n = 0; n < config.num_sbs(); ++n) {
      model::SparseSbsDemand d(config.sbs[n].num_classes(),
                               config.num_contents);
      while (cursor < entries.size() && entries[cursor].t == t &&
             entries[cursor].n == n) {
        const auto& e = entries[cursor++];
        if (e.rate != 0.0 && e.rate >= min_rate) d.append(e.m, e.k, e.rate);
      }
      d.finalize();
      slot.push_back(std::move(d));
    }
    trace.push_back(std::move(slot));
  }
  trace.validate(config);
  return trace;
}

model::SparseDemandTrace load_sparse_trace_csv(
    const std::string& path, const model::NetworkConfig& config,
    double min_rate, const TraceLoadOptions& options) {
  std::ifstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  return load_sparse_trace_csv(file, config, min_rate, options);
}

}  // namespace mdo::workload
