#include "workload/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace mdo::workload {

void save_trace_csv(std::ostream& os, const model::DemandTrace& trace) {
  os << "slot,sbs,class,content,rate\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const auto& slot = trace.slot(t);
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const auto& demand = slot[n];
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (std::size_t k = 0; k < demand.num_contents(); ++k) {
          const double rate = demand.at(m, k);
          if (rate == 0.0) continue;
          os << t << ',' << n << ',' << m << ',' << k << ',' << rate << '\n';
        }
      }
    }
  }
}

void save_trace_csv(const std::string& path, const model::DemandTrace& trace) {
  std::ofstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  save_trace_csv(file, trace);
}

model::DemandTrace load_trace_csv(std::istream& is,
                                  const model::NetworkConfig& config) {
  config.validate();
  std::string line;
  MDO_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace file is empty");
  MDO_REQUIRE(line.rfind("slot,sbs,class,content,rate", 0) == 0,
              "unexpected trace header: " + line);

  struct Entry {
    std::size_t t, n, m, k;
    double rate;
  };
  std::vector<Entry> entries;
  std::size_t max_slot = 0;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    Entry entry{};
    char c1, c2, c3, c4;
    row >> entry.t >> c1 >> entry.n >> c2 >> entry.m >> c3 >> entry.k >> c4 >>
        entry.rate;
    MDO_REQUIRE(row && c1 == ',' && c2 == ',' && c3 == ',' && c4 == ',',
                "malformed trace row at line " + std::to_string(line_number));
    MDO_REQUIRE(entry.n < config.num_sbs(),
                "SBS index out of range at line " + std::to_string(line_number));
    MDO_REQUIRE(entry.m < config.sbs[entry.n].num_classes(),
                "class index out of range at line " +
                    std::to_string(line_number));
    MDO_REQUIRE(entry.k < config.num_contents,
                "content index out of range at line " +
                    std::to_string(line_number));
    MDO_REQUIRE(std::isfinite(entry.rate) && entry.rate >= 0.0,
                "invalid rate at line " + std::to_string(line_number));
    max_slot = std::max(max_slot, entry.t);
    entries.push_back(entry);
  }
  MDO_REQUIRE(!entries.empty(), "trace file has no data rows");

  model::DemandTrace trace;
  for (std::size_t t = 0; t <= max_slot; ++t) {
    trace.push_back(model::make_zero_slot_demand(config));
  }
  for (const auto& entry : entries) {
    trace.slot(entry.t)[entry.n].at(entry.m, entry.k) = entry.rate;
  }
  trace.validate(config);
  return trace;
}

model::DemandTrace load_trace_csv(const std::string& path,
                                  const model::NetworkConfig& config) {
  std::ifstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  return load_trace_csv(file, config);
}

}  // namespace mdo::workload
