#include "workload/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <set>
#include <tuple>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "workload/trace_parse.hpp"

namespace mdo::workload {

namespace {

using Entry = detail::TraceEntry;

/// Shared row parser: header + data rows + shape/duplicate/stream checks.
/// Returns the entries in file order plus the largest slot index seen.
/// Record-level failures consume options.max_bad_records before throwing;
/// file-level failures (header, stream, empty file) always throw.
std::pair<std::vector<Entry>, std::size_t> parse_trace_rows(
    std::istream& is, const model::NetworkConfig& config,
    const TraceLoadOptions& options) {
  config.validate();
  std::string line;
  MDO_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace file is empty");
  MDO_REQUIRE(line.rfind(detail::kTraceHeader, 0) == 0,
              "unexpected trace header: " + line);

  std::vector<Entry> entries;
  std::set<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>>
      seen;
  std::size_t max_slot = 0;
  std::size_t line_number = 1;
  std::size_t skipped = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      const Entry entry = detail::parse_trace_entry(line, line_number, config);
      MDO_REQUIRE(seen.insert({entry.t, entry.n, entry.m, entry.k}).second,
                  "duplicate (slot,sbs,class,content) entry at line " +
                      std::to_string(line_number));
      max_slot = std::max(max_slot, entry.t);
      entries.push_back(entry);
    } catch (const InvalidArgument& e) {
      // Over budget the original record error propagates — the caller sees
      // exactly what was wrong with the first unskippable row.
      if (skipped >= options.max_bad_records) throw;
      ++skipped;
      MDO_WARN("skipping bad trace record (" << skipped << "/"
                                             << options.max_bad_records
                                             << "): " << e.what());
    }
  }
  // getline() ends on either EOF or a hard read error; only the former means
  // we actually saw the whole file (a truncated read must not silently yield
  // a shorter trace).
  MDO_REQUIRE(is.eof(), "stream failure while reading trace (truncated?)");
  MDO_REQUIRE(!entries.empty(), "trace file has no data rows");
  if (options.skipped_records != nullptr) *options.skipped_records = skipped;
  return {std::move(entries), max_slot};
}

}  // namespace

void save_trace_csv(std::ostream& os, const model::DemandTrace& trace) {
  os << "slot,sbs,class,content,rate\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const auto& slot = trace.slot(t);
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const auto& demand = slot[n];
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (std::size_t k = 0; k < demand.num_contents(); ++k) {
          const double rate = demand.at(m, k);
          if (rate == 0.0) continue;
          os << t << ',' << n << ',' << m << ',' << k << ',' << rate << '\n';
        }
      }
    }
  }
  // A full disk or a broken pipe surfaces as a failed stream, not as an
  // exception — check before declaring the trace saved.
  MDO_REQUIRE(static_cast<bool>(os),
              "stream failure while writing trace (disk full?)");
}

void save_trace_csv(const std::string& path, const model::DemandTrace& trace) {
  std::ofstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  save_trace_csv(file, trace);
  file.flush();
  MDO_REQUIRE(static_cast<bool>(file),
              "stream failure while writing trace file: " + path);
}

model::DemandTrace load_trace_csv(std::istream& is,
                                  const model::NetworkConfig& config,
                                  const TraceLoadOptions& options) {
  auto [entries, max_slot] = parse_trace_rows(is, config, options);

  model::DemandTrace trace;
  for (std::size_t t = 0; t <= max_slot; ++t) {
    trace.push_back(model::make_zero_slot_demand(config));
  }
  for (const auto& entry : entries) {
    trace.slot(entry.t)[entry.n].at(entry.m, entry.k) = entry.rate;
  }
  trace.validate(config);
  return trace;
}

model::DemandTrace load_trace_csv(const std::string& path,
                                  const model::NetworkConfig& config,
                                  const TraceLoadOptions& options) {
  std::ifstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  return load_trace_csv(file, config, options);
}

void save_trace_csv(std::ostream& os, const model::SparseDemandTrace& trace) {
  os << "slot,sbs,class,content,rate\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const auto& slot = trace.slot(t);
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const auto& demand = slot[n];
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (const auto* it = demand.row_begin(m); it != demand.row_end(m);
             ++it) {
          os << t << ',' << n << ',' << m << ',' << it->content << ','
             << it->rate << '\n';
        }
      }
    }
  }
  MDO_REQUIRE(static_cast<bool>(os),
              "stream failure while writing trace (disk full?)");
}

void save_trace_csv(const std::string& path,
                    const model::SparseDemandTrace& trace) {
  std::ofstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  save_trace_csv(file, trace);
  file.flush();
  MDO_REQUIRE(static_cast<bool>(file),
              "stream failure while writing trace file: " + path);
}

model::SparseDemandTrace load_sparse_trace_csv(
    std::istream& is, const model::NetworkConfig& config, double min_rate,
    const TraceLoadOptions& options) {
  MDO_REQUIRE(std::isfinite(min_rate) && min_rate >= 0.0,
              "min_rate must be finite and non-negative");
  auto [entries, max_slot] = parse_trace_rows(is, config, options);

  // CSR append wants (t, n, m, k) lexicographic order; the file may hold
  // rows in any order (stable_sort is overkill — duplicates were rejected).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.t, a.n, a.m, a.k) <
                     std::tie(b.t, b.n, b.m, b.k);
            });

  model::SparseDemandTrace trace;
  std::size_t cursor = 0;
  for (std::size_t t = 0; t <= max_slot; ++t) {
    model::SparseSlotDemand slot;
    slot.reserve(config.num_sbs());
    for (std::size_t n = 0; n < config.num_sbs(); ++n) {
      model::SparseSbsDemand d(config.sbs[n].num_classes(),
                               config.num_contents);
      while (cursor < entries.size() && entries[cursor].t == t &&
             entries[cursor].n == n) {
        const auto& e = entries[cursor++];
        if (e.rate != 0.0 && e.rate >= min_rate) d.append(e.m, e.k, e.rate);
      }
      d.finalize();
      slot.push_back(std::move(d));
    }
    trace.push_back(std::move(slot));
  }
  trace.validate(config);
  return trace;
}

model::SparseDemandTrace load_sparse_trace_csv(
    const std::string& path, const model::NetworkConfig& config,
    double min_rate, const TraceLoadOptions& options) {
  std::ifstream file(path);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open trace file: " + path);
  return load_sparse_trace_csv(file, config, min_rate, options);
}

}  // namespace mdo::workload
