#include "workload/predictor.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdo::workload {

model::DemandTrace Predictor::predict_window(std::size_t tau,
                                             std::size_t length) const {
  model::DemandTrace out;
  predict_window_into(tau, length, out);
  return out;
}

void Predictor::predict_window_into(std::size_t tau, std::size_t length,
                                    model::DemandTrace& out) const {
  out.clear();
  for (std::size_t t = tau; t < tau + length && t < horizon(); ++t) {
    out.push_back(predict(tau, t));
  }
}

model::SparseSlotDemand Predictor::predict_sparse(std::size_t tau,
                                                  std::size_t t) const {
  const model::SlotDemand dense = predict(tau, t);
  model::SparseSlotDemand out;
  out.reserve(dense.size());
  for (const model::SbsDemand& demand : dense) {
    out.push_back(model::SparseSbsDemand::from_dense(demand));
  }
  return out;
}

model::SparseDemandTrace Predictor::predict_window_sparse(
    std::size_t tau, std::size_t length) const {
  model::SparseDemandTrace out;
  predict_window_sparse_into(tau, length, out);
  return out;
}

void Predictor::predict_window_sparse_into(
    std::size_t tau, std::size_t length, model::SparseDemandTrace& out) const {
  out.clear();
  for (std::size_t t = tau; t < tau + length && t < horizon(); ++t) {
    out.push_back(predict_sparse(tau, t));
  }
}

PerfectPredictor::PerfectPredictor(const model::DemandTrace& truth)
    : truth_(&truth) {}

PerfectPredictor::PerfectPredictor(const model::SparseDemandTrace& truth)
    : sparse_truth_(&truth) {}

model::SlotDemand PerfectPredictor::predict(std::size_t tau,
                                            std::size_t t) const {
  MDO_REQUIRE(tau <= t, "cannot predict the past");
  if (truth_ != nullptr) return truth_->slot(t);
  return model::SlotDemandView(sparse_truth_->slot(t)).to_dense();
}

model::SparseSlotDemand PerfectPredictor::predict_sparse(std::size_t tau,
                                                         std::size_t t) const {
  MDO_REQUIRE(tau <= t, "cannot predict the past");
  if (sparse_truth_ != nullptr) return sparse_truth_->slot(t);
  return Predictor::predict_sparse(tau, t);
}

std::size_t PerfectPredictor::horizon() const {
  return truth_ != nullptr ? truth_->horizon() : sparse_truth_->horizon();
}

NoisyPredictor::NoisyPredictor(const model::DemandTrace& truth, double eta,
                               std::uint64_t seed, double lead_growth)
    : truth_(&truth), eta_(eta), lead_growth_(lead_growth), seed_(seed) {
  MDO_REQUIRE(eta >= 0.0 && eta < 1.0, "eta must be in [0, 1)");
  MDO_REQUIRE(lead_growth >= 0.0, "lead_growth must be non-negative");
}

NoisyPredictor::NoisyPredictor(const model::SparseDemandTrace& truth,
                               double eta, std::uint64_t seed,
                               double lead_growth)
    : sparse_truth_(&truth), eta_(eta), lead_growth_(lead_growth),
      seed_(seed) {
  MDO_REQUIRE(eta >= 0.0 && eta < 1.0, "eta must be in [0, 1)");
  MDO_REQUIRE(lead_growth >= 0.0, "lead_growth must be non-negative");
}

std::size_t NoisyPredictor::horizon() const {
  return truth_ != nullptr ? truth_->horizon() : sparse_truth_->horizon();
}

std::vector<std::vector<double>> NoisyPredictor::noise_factors(
    std::size_t tau, std::size_t t, std::size_t num_sbs,
    std::size_t contents) const {
  const double lead = static_cast<double>(t - tau);
  const double eta_eff =
      std::min(0.95, eta_ * (1.0 + lead_growth_ * lead));
  // The paper perturbs the *popularity* p(i) (eq. 49): one factor per
  // content, shared by every MU class at the SBS (per-entry noise would
  // average out across classes and underestimate the damage). The factor
  // composes a persistent per-content misestimation (the forecaster's wrong
  // popularity model) with query-time jitter (fresher forecasts differ from
  // staler ones), clamped into the paper's [(1 - eta), (1 + eta)] band.
  std::uint64_t bias_mix = seed_;
  (void)splitmix64(bias_mix);
  Rng bias_rng(splitmix64(bias_mix));

  std::uint64_t mix = seed_;
  (void)splitmix64(mix);
  mix ^= 0x9e3779b97f4a7c15ULL * (tau + 1);
  (void)splitmix64(mix);
  mix ^= 0xc2b2ae3d27d4eb4fULL * (t + 1);
  Rng jitter_rng(splitmix64(mix));

  std::vector<std::vector<double>> factors(num_sbs);
  for (auto& factor : factors) {
    factor.resize(contents);
    for (auto& f : factor) {
      const double bias = bias_rng.uniform(1.0 - eta_eff, 1.0 + eta_eff);
      const double jitter =
          jitter_rng.uniform(1.0 - 0.5 * eta_eff, 1.0 + 0.5 * eta_eff);
      f = std::clamp(bias * jitter, 1.0 - eta_eff, 1.0 + eta_eff);
    }
  }
  return factors;
}

model::SlotDemand NoisyPredictor::predict(std::size_t tau,
                                          std::size_t t) const {
  MDO_REQUIRE(tau <= t, "cannot predict the past");
  model::SlotDemand out =
      truth_ != nullptr ? truth_->slot(t)
                        : model::SlotDemandView(sparse_truth_->slot(t))
                              .to_dense();
  if (eta_ == 0.0) return out;
  const std::size_t contents = out.empty() ? 0 : out.front().num_contents();
  const auto factors = noise_factors(tau, t, out.size(), contents);
  for (std::size_t n = 0; n < out.size(); ++n) {
    const auto& factor = factors[n];
    auto& flat = out[n].data();
    for (std::size_t j = 0; j < flat.size(); ++j) {
      flat[j] *= factor[j % contents];
    }
  }
  return out;
}

model::SparseSlotDemand NoisyPredictor::predict_sparse(std::size_t tau,
                                                       std::size_t t) const {
  MDO_REQUIRE(tau <= t, "cannot predict the past");
  model::SparseSlotDemand out;
  if (sparse_truth_ != nullptr) {
    out = sparse_truth_->slot(t);
  } else {
    const model::SlotDemand& dense = truth_->slot(t);
    out.reserve(dense.size());
    for (const model::SbsDemand& demand : dense) {
      out.push_back(model::SparseSbsDemand::from_dense(demand));
    }
  }
  if (eta_ == 0.0) return out;
  const std::size_t contents = out.empty() ? 0 : out.front().num_contents();
  // Same factor draws as predict(); scaling only the stored entries matches
  // the dense loop because its skipped terms are exact zeros (0 * f = 0).
  const auto factors = noise_factors(tau, t, out.size(), contents);
  for (std::size_t n = 0; n < out.size(); ++n) {
    out[n].scale_by_content(factors[n]);
  }
  return out;
}

}  // namespace mdo::workload
