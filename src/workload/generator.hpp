// Synthetic request-trace generation (Sec. V-B).
//
// Per slot t and MU class m the generator draws a request density
// rho_m^t ~ U[density_min, density_max] and sets
//   lambda[m, k, t] = rho_m^t * pmf(rank_t(k)) * xi[m, k, t]
// where pmf is the Zipf-Mandelbrot popularity over ranks, rank_t is a
// slowly drifting permutation (a configurable number of random adjacent
// transpositions per slot models popularity churn — without churn the
// optimal cache is static and every replacement series in Fig. 2-4 is
// degenerate), and xi is optional per-entry multiplicative noise
// U[1-sigma, 1+sigma] modelling class-level taste dispersion.
//
// The paper's own text only pins the Zipf parameters and the density range;
// the churn knobs are documented reproduction choices (see DESIGN.md).
#pragma once

#include <cstdint>

#include "model/demand.hpp"
#include "model/network.hpp"
#include "model/sparse_demand.hpp"

namespace mdo::workload {

struct WorkloadOptions {
  double zipf_alpha = 0.8;  // paper
  double zipf_q = 30.0;     // paper
  double density_min = 0.0;
  double density_max = 2.0;
  /// Adjacent rank transpositions applied per slot (popularity drift).
  std::size_t rank_swaps_per_slot = 2;
  /// Per-(class, content, slot) multiplicative noise half-width sigma:
  /// xi ~ U[1-sigma, 1+sigma]. 0 disables.
  double demand_noise = 0.25;
  /// When true every MU class gets its own independent rank permutation.
  bool per_class_ranking = false;
  /// Diurnal modulation: densities are scaled by
  ///   1 + diurnal_amplitude * sin(2 pi t / diurnal_period)
  /// (amplitude in [0, 1]). Models the day/night traffic cycle that makes
  /// off-peak cache updates attractive (Sec. I). 0 disables.
  double diurnal_amplitude = 0.0;
  std::size_t diurnal_period = 24;
  /// Truncation knob: generated rates strictly below min_rate become exact
  /// zeros (dense) / structural zeros (sparse), cutting the Zipf tail so
  /// sparse solves scale with the head instead of the catalogue. 0 keeps
  /// everything; the RNG stream is identical for every value, so traces at
  /// different min_rate agree on every surviving entry.
  double min_rate = 0.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates a demand trace of `horizon` slots shaped after `config`.
/// Deterministic in (config shape, horizon, options including seed).
model::DemandTrace generate_demand(const model::NetworkConfig& config,
                                   std::size_t horizon,
                                   const WorkloadOptions& options);

/// Sparse twin of generate_demand: identical RNG stream, identical
/// surviving values — generate_sparse_demand(...).to_dense() equals
/// generate_demand(...) entry for entry (both honoring options.min_rate).
model::SparseDemandTrace generate_sparse_demand(
    const model::NetworkConfig& config, std::size_t horizon,
    const WorkloadOptions& options);

}  // namespace mdo::workload
