// History-based forecasting (extension beyond the paper).
//
// The paper models prediction quality abstractly (truth times bounded
// noise). EmaPredictor is a *realizable* forecaster instead: at decision
// time tau it has observed the true demand of slots 0..tau-1 and predicts
// every future slot with the exponential moving average
//   ema_tau = alpha * lambda_{tau-1} + (1 - alpha) * ema_{tau-1},
// i.e. a flat per-(SBS, class, content) forecast. Before any observation it
// predicts zero (an honest cold start). This lets the online controllers be
// evaluated against forecast error that comes from the workload itself
// (popularity drift, density variation) rather than injected noise.
#pragma once

#include <mutex>

#include "workload/predictor.hpp"

namespace mdo::workload {

class EmaPredictor final : public Predictor {
 public:
  /// alpha in (0, 1]: smoothing factor. The trace must outlive the
  /// predictor; only slots strictly before the query time are used.
  ///
  /// Thread safety: predict() is const but advances a lazily-computed EMA
  /// cache, so unsynchronized const access from multiple threads would
  /// race. The cache is guarded by an internal mutex, making concurrent
  /// predict()/save_state() calls safe. Sharing one instance across
  /// replicates is still a correctness mistake for OTHER reasons (the
  /// observation boundary would interleave) — sim::run_replicated
  /// constructs a fresh predictor per replicate, and new code should too.
  EmaPredictor(const model::DemandTrace& truth, double alpha);

  model::SlotDemand predict(std::size_t tau, std::size_t t) const override;
  std::size_t horizon() const override;

  /// Snapshot = the incremental EMA cache (observation boundary + per-SBS
  /// state). The cache is also derivable from the trace, so restoring it is
  /// an optimization (skips the prefix re-scan) — bit-identical either way
  /// because advance_to() folds slots in the same order from slot 0.
  void save_state(util::BinaryWriter& w) const override;
  void restore_state(util::BinaryReader& r) const override;

  double alpha() const { return alpha_; }

 private:
  /// Recomputes (or advances) the cached EMA state up to observation
  /// boundary tau (exclusive).
  void advance_to(std::size_t tau) const;

  const model::DemandTrace* truth_;
  double alpha_;
  // Cached EMA state: valid after observing slots [0, cached_tau_). All
  // three fields are written inside const methods and must only be touched
  // with mutex_ held.
  mutable std::mutex mutex_;
  mutable std::size_t cached_tau_ = 0;
  mutable model::SlotDemand state_;
  mutable bool state_initialized_ = false;
};

}  // namespace mdo::workload
