#include "workload/zipf.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mdo::workload {

std::vector<double> zipf_mandelbrot_weights(std::size_t num_items,
                                            double alpha, double q) {
  MDO_REQUIRE(num_items > 0, "zipf: need at least one item");
  MDO_REQUIRE(alpha >= 0.0, "zipf: alpha must be non-negative");
  MDO_REQUIRE(q >= 0.0, "zipf: q must be non-negative");
  std::vector<double> w(num_items);
  const double k = static_cast<double>(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    w[i] = k / std::pow(static_cast<double>(i + 1) + q, alpha);
  }
  return w;
}

std::vector<double> zipf_mandelbrot_pmf(std::size_t num_items, double alpha,
                                        double q) {
  auto w = zipf_mandelbrot_weights(num_items, alpha, q);
  double total = 0.0;
  for (const double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

}  // namespace mdo::workload
