// Zipf-Mandelbrot content popularity (eq. (49), Sec. V-B).
//
// The paper models request popularity as p(i) = K / (i + q)^alpha with
// shape alpha = 0.8 and shift q = 30. Ranks are 1-based in the paper; the
// helpers below take 0-based rank indices.
#pragma once

#include <cstddef>
#include <vector>

namespace mdo::workload {

/// Unnormalized Zipf-Mandelbrot weights: w[i] = K / (i + 1 + q)^alpha for
/// 0-based rank i in [0, K). alpha >= 0, q >= 0.
std::vector<double> zipf_mandelbrot_weights(std::size_t num_items,
                                            double alpha, double q);

/// Weights normalized to sum to 1 (a probability over ranks).
std::vector<double> zipf_mandelbrot_pmf(std::size_t num_items, double alpha,
                                        double q);

}  // namespace mdo::workload
