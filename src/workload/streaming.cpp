#include "workload/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mdo::workload {

StreamingTraceReader::StreamingTraceReader(std::istream& is,
                                           const model::NetworkConfig& config,
                                           StreamingTraceOptions options)
    : is_(&is), config_(&config), options_(options) {
  config.validate();
  MDO_REQUIRE(std::isfinite(options_.min_rate) && options_.min_rate >= 0.0,
              "min_rate must be finite and non-negative");
  read_header();
}

StreamingTraceReader::StreamingTraceReader(const std::string& path,
                                           const model::NetworkConfig& config,
                                           StreamingTraceOptions options)
    : file_(path), is_(&file_), config_(&config), options_(options) {
  config.validate();
  MDO_REQUIRE(std::isfinite(options_.min_rate) && options_.min_rate >= 0.0,
              "min_rate must be finite and non-negative");
  MDO_REQUIRE(static_cast<bool>(file_), "cannot open trace file: " + path);
  read_header();
}

void StreamingTraceReader::read_header() {
  std::string line;
  MDO_REQUIRE(static_cast<bool>(std::getline(*is_, line)),
              "trace file is empty");
  MDO_REQUIRE(line.rfind(detail::kTraceHeader, 0) == 0,
              "unexpected trace header: " + line);
}

void StreamingTraceReader::advance_pending() {
  pending_.reset();
  std::string line;
  while (std::getline(*is_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    detail::TraceEntry entry;
    try {
      entry = detail::parse_trace_entry(line, line_number_, *config_);
    } catch (const InvalidArgument& e) {
      // Over budget the original record error propagates — the caller sees
      // exactly what was wrong with the first unskippable row.
      if (skipped_ >= options_.max_bad_records) throw;
      ++skipped_;
      MDO_WARN("skipping bad trace record (" << skipped_ << "/"
                                             << options_.max_bad_records
                                             << "): " << e.what());
      continue;
    }
    // Out-of-order slots break the streaming contract outright: earlier
    // slots were already yielded and cannot be amended. File-level error,
    // never skippable.
    if (saw_data_ && entry.t < last_slot_seen_) {
      throw InvalidArgument(
          "trace line " + std::to_string(line_number_) + ": slot " +
          std::to_string(entry.t) + " after slot " +
          std::to_string(last_slot_seen_) +
          " — streaming ingestion requires non-decreasing slot order");
    }
    saw_data_ = true;
    last_slot_seen_ = entry.t;
    pending_ = entry;
    pending_line_ = line_number_;
    return;
  }
  // getline() ends on either EOF or a hard read error; only the former
  // means we actually saw the whole file.
  MDO_REQUIRE(is_->eof(), "stream failure while reading trace (truncated?)");
  exhausted_ = true;
}

void StreamingTraceReader::fill_slot(std::size_t current) {
  while (pending_ && pending_->t == current) {
    const detail::TraceEntry entry = *pending_;
    const std::size_t line = pending_line_;
    advance_pending();
    if (!seen_.insert({entry.n, entry.m, entry.k}).second) {
      const std::string what =
          "duplicate (slot,sbs,class,content) entry at line " +
          std::to_string(line);
      if (skipped_ >= options_.max_bad_records) throw InvalidArgument(what);
      ++skipped_;
      MDO_WARN("skipping bad trace record (" << skipped_ << "/"
                                             << options_.max_bad_records
                                             << "): " << what);
      continue;
    }
    if (entry.rate != 0.0 && entry.rate >= options_.min_rate) {
      slot_entries_.push_back(entry);
    }
  }
}

std::optional<model::SparseSlotDemand> StreamingTraceReader::next() {
  if (!pending_ && !exhausted_) advance_pending();  // first pull / drained
  if (!pending_) {
    MDO_REQUIRE(saw_data_, "trace file has no data rows");
    return std::nullopt;
  }

  const std::size_t current = next_slot_;
  slot_entries_.clear();
  seen_.clear();
  if (pending_->t == current) {
    fill_slot(current);
  }
  // pending_->t > current: a gap slot — yielded as all zeros, exactly like
  // the batch loaders' absent-entries-are-zero semantics.

  // CSR append wants (n, m, k) lexicographic order; rows within the slot
  // may appear in any order.
  std::sort(slot_entries_.begin(), slot_entries_.end(),
            [](const detail::TraceEntry& a, const detail::TraceEntry& b) {
              return std::tie(a.n, a.m, a.k) < std::tie(b.n, b.m, b.k);
            });
  model::SparseSlotDemand slot;
  slot.reserve(config_->num_sbs());
  std::size_t cursor = 0;
  for (std::size_t n = 0; n < config_->num_sbs(); ++n) {
    model::SparseSbsDemand d(config_->sbs[n].num_classes(),
                             config_->num_contents);
    while (cursor < slot_entries_.size() && slot_entries_[cursor].n == n) {
      const detail::TraceEntry& e = slot_entries_[cursor++];
      d.append(e.m, e.k, e.rate);
      ++entries_yielded_;
    }
    d.finalize();
    slot.push_back(std::move(d));
  }
  ++next_slot_;
  return slot;
}

}  // namespace mdo::workload
