// Crash-consistent checkpoint files and model-state codecs.
//
// A checkpoint is a single binary file:
//
//   magic "MDOCKPT1" | u32 format version | u64 payload size |
//   u64 FNV-1a checksum of the payload | payload bytes
//
// written through util::write_file_atomic (tmp + rename), so a crash at any
// instant leaves either the previous complete checkpoint or the new one —
// never a torn file. read_checkpoint_file() verifies magic, version,
// declared size, and checksum before handing out the payload; a truncated
// or bit-flipped file is rejected with InvalidArgument and the caller falls
// back to a cold start instead of resuming from garbage.
//
// The payload itself is produced by the component being snapshotted (the
// simulator composes: run header, accumulated records, controller blob —
// see sim/simulator.hpp). This header also provides the codecs for the
// model types every controller snapshot needs (CacheState, LoadAllocation,
// SlotDecision, Schedule); shapes are validated against the config on read
// so a snapshot from a different instance cannot be restored silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/decision.hpp"
#include "model/network.hpp"
#include "util/serialize.hpp"

namespace mdo::runtime {

inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Frames `payload` (version + size + checksum) and atomically replaces
/// `path` with it.
void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& payload);

/// Reads and verifies a checkpoint file; returns the payload. Throws
/// InvalidArgument on a missing file, bad magic, unsupported version,
/// size mismatch (truncation), or checksum mismatch (corruption).
std::vector<std::uint8_t> read_checkpoint_file(const std::string& path);

// ---- Model-state codecs (bit-exact round trips). -------------------------

void write_cache(util::BinaryWriter& w, const model::CacheState& cache);
/// Restores a cache written by write_cache; the snapshot's shape must
/// match `config` exactly.
model::CacheState read_cache(util::BinaryReader& r,
                             const model::NetworkConfig& config);

void write_load(util::BinaryWriter& w, const model::LoadAllocation& load);
model::LoadAllocation read_load(util::BinaryReader& r,
                                const model::NetworkConfig& config);

void write_decision(util::BinaryWriter& w, const model::SlotDecision& decision);
model::SlotDecision read_decision(util::BinaryReader& r,
                                  const model::NetworkConfig& config);

void write_schedule(util::BinaryWriter& w, const model::Schedule& schedule);
model::Schedule read_schedule(util::BinaryReader& r,
                              const model::NetworkConfig& config);

}  // namespace mdo::runtime
