// Per-decision deadline budgets for anytime solving.
//
// The online controllers must commit a decision every slot, but Algorithm 1's
// dual loop has an iteration cap, not a time budget. A DeadlineToken carries
// that budget: the solvers poll it once per dual iteration (a serial point in
// the outer loop, so poll counts are identical at every thread count) and,
// on expiry, return their best feasible incumbent with
// SolveStatus::kDeadlineExpired instead of running the loop to the cap.
//
// Three modes:
//  - unlimited (default): poll() never reads the clock and always passes —
//    a default-constructed token on the hot path costs one branch, keeping
//    the no-deadline configuration bitwise-transparent.
//  - wall-clock (after_seconds): monotonic steady_clock budget, for
//    production latency targets. Overshoot is bounded by one dual iteration
//    because that is the polling granularity.
//  - logical (after_checks): expires after a fixed number of polls. Poll
//    counts are thread-invariant, so this mode makes deadline behavior —
//    and every degradation event downstream of it — reproducible across
//    MDO_THREADS settings; the determinism tests and the kill/resume matrix
//    rely on it.
//
// Tokens are single-threaded by contract: only the serial outer loop polls.
#pragma once

#include <chrono>
#include <cstdint>

namespace mdo::runtime {

class DeadlineToken {
 public:
  /// Unlimited budget: poll() always passes without reading the clock.
  DeadlineToken() = default;

  /// Wall-clock budget starting now. Non-positive seconds are treated as
  /// already expired (the first poll fails).
  static DeadlineToken after_seconds(double seconds) {
    DeadlineToken token;
    token.mode_ = Mode::kWallClock;
    token.deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               seconds > 0.0 ? seconds : 0.0));
    return token;
  }

  /// Logical budget: the first `checks` polls pass, every later poll
  /// reports expiry. With per-iteration polling this admits exactly
  /// `checks + 1` dual iterations (the solver completes one iteration
  /// before its first poll so an incumbent always exists).
  static DeadlineToken after_checks(std::uint64_t checks) {
    DeadlineToken token;
    token.mode_ = Mode::kChecks;
    token.checks_ = checks;
    return token;
  }

  static DeadlineToken unlimited() { return DeadlineToken{}; }

  /// Whether this token can ever expire.
  bool active() const { return mode_ != Mode::kUnlimited; }

  /// Consuming check — call once per dual iteration. Returns true once the
  /// budget is exhausted; the result is sticky (every later poll also
  /// reports expiry).
  bool poll() {
    switch (mode_) {
      case Mode::kUnlimited:
        return false;
      case Mode::kWallClock:
        if (!expired_ && Clock::now() >= deadline_) expired_ = true;
        return expired_;
      case Mode::kChecks:
        if (polls_ < checks_) {
          ++polls_;
          return false;
        }
        expired_ = true;
        return true;
    }
    return false;
  }

  /// Non-consuming: has poll() reported expiry? (Never reads the clock, so
  /// callers can inspect the outcome of a solve without consuming budget.)
  bool expired() const { return expired_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class Mode { kUnlimited, kWallClock, kChecks };

  Mode mode_ = Mode::kUnlimited;
  Clock::time_point deadline_{};
  std::uint64_t checks_ = 0;
  std::uint64_t polls_ = 0;
  bool expired_ = false;
};

}  // namespace mdo::runtime
