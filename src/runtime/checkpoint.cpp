#include "runtime/checkpoint.hpp"

#include <cstring>

#include "linalg/vec.hpp"
#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace mdo::runtime {

namespace {
constexpr char kMagic[8] = {'M', 'D', 'O', 'C', 'K', 'P', 'T', '1'};
}  // namespace

void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& payload) {
  util::BinaryWriter w;
  for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kCheckpointFormatVersion);
  w.u64(payload.size());
  w.u64(util::fnv1a64(payload));
  w.u8_vec(payload);  // length-prefixed: double-checks the size on read
  util::write_file_atomic(path, w.bytes());
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  util::BinaryReader r(bytes);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  MDO_REQUIRE(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "checkpoint " + path + ": bad magic (not a checkpoint file?)");
  const std::uint32_t version = r.u32();
  MDO_REQUIRE(version == kCheckpointFormatVersion,
              "checkpoint " + path + ": unsupported format version " +
                  std::to_string(version));
  const std::uint64_t declared_size = r.u64();
  const std::uint64_t checksum = r.u64();
  const std::vector<std::uint8_t> payload = r.u8_vec();
  MDO_REQUIRE(payload.size() == declared_size && r.exhausted(),
              "checkpoint " + path + ": truncated or oversized payload");
  MDO_REQUIRE(util::fnv1a64(payload) == checksum,
              "checkpoint " + path + ": checksum mismatch (corrupted)");
  return payload;
}

void write_cache(util::BinaryWriter& w, const model::CacheState& cache) {
  w.size(cache.num_sbs());
  w.size(cache.num_contents());
  for (std::size_t n = 0; n < cache.num_sbs(); ++n) {
    w.u8_vec(cache.sbs_bitmap(n));
  }
}

model::CacheState read_cache(util::BinaryReader& r,
                             const model::NetworkConfig& config) {
  const std::size_t num_sbs = r.size();
  const std::size_t num_contents = r.size();
  MDO_REQUIRE(num_sbs == config.num_sbs() &&
                  num_contents == config.num_contents,
              "cache snapshot: shape mismatch against the instance config");
  model::CacheState cache(config);
  for (std::size_t n = 0; n < num_sbs; ++n) {
    const std::vector<std::uint8_t> bitmap = r.u8_vec();
    MDO_REQUIRE(bitmap.size() == num_contents,
                "cache snapshot: bitmap length mismatch");
    for (std::size_t k = 0; k < num_contents; ++k) {
      if (bitmap[k] != 0) cache.set(n, k, true);
    }
  }
  return cache;
}

void write_load(util::BinaryWriter& w, const model::LoadAllocation& load) {
  w.size(load.num_sbs());
  w.size(load.num_contents());
  for (std::size_t n = 0; n < load.num_sbs(); ++n) {
    w.f64_vec(load.sbs_data(n));
  }
  w.boolean(load.has_neighbor());
  if (load.has_neighbor()) {
    for (std::size_t n = 0; n < load.num_sbs(); ++n) {
      w.f64_vec(load.neighbor_data(n));
    }
  }
}

model::LoadAllocation read_load(util::BinaryReader& r,
                                const model::NetworkConfig& config) {
  const std::size_t num_sbs = r.size();
  const std::size_t num_contents = r.size();
  MDO_REQUIRE(num_sbs == config.num_sbs() &&
                  num_contents == config.num_contents,
              "load snapshot: shape mismatch against the instance config");
  model::LoadAllocation load(config);
  for (std::size_t n = 0; n < num_sbs; ++n) {
    linalg::Vec data = r.f64_vec_as<linalg::Vec>();
    MDO_REQUIRE(data.size() == load.sbs_data(n).size(),
                "load snapshot: row length mismatch");
    load.sbs_data(n) = std::move(data);
  }
  if (r.boolean()) {
    load.ensure_neighbor();
    for (std::size_t n = 0; n < num_sbs; ++n) {
      linalg::Vec data = r.f64_vec_as<linalg::Vec>();
      MDO_REQUIRE(data.size() == load.neighbor_data(n).size(),
                  "load snapshot: neighbor row length mismatch");
      load.neighbor_data(n) = std::move(data);
    }
  }
  return load;
}

void write_decision(util::BinaryWriter& w,
                    const model::SlotDecision& decision) {
  write_cache(w, decision.cache);
  write_load(w, decision.load);
}

model::SlotDecision read_decision(util::BinaryReader& r,
                                  const model::NetworkConfig& config) {
  model::SlotDecision decision;
  decision.cache = read_cache(r, config);
  decision.load = read_load(r, config);
  return decision;
}

void write_schedule(util::BinaryWriter& w, const model::Schedule& schedule) {
  w.size(schedule.size());
  for (const auto& decision : schedule) write_decision(w, decision);
}

model::Schedule read_schedule(util::BinaryReader& r,
                              const model::NetworkConfig& config) {
  const std::size_t count = r.count();
  model::Schedule schedule;
  schedule.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    schedule.push_back(read_decision(r, config));
  }
  return schedule;
}

}  // namespace mdo::runtime
