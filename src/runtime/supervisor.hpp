// Deadline supervision for Algorithm 1 solves.
//
// supervised_solve() wraps core::PrimalDualSolver::solve with the
// escalation policy of the runtime layer:
//
//  - Deadline expiry (SolveStatus::kDeadlineExpired) is *not* retried: the
//    solver's anytime incumbent is already the best bounded-latency answer —
//    a retry cannot buy the budget back, it can only overshoot it further.
//    The expiry is logged and the incumbent served; wall-clock overshoot
//    stays bounded by the solver's one-iteration polling granularity.
//
//  - Solve failure (SolveStatus::kNonFiniteInput) escalates through bounded
//    retry-with-backoff: each retry relaxes the tolerance by
//    `tolerance_relax` and halves the planning horizon (clamped to
//    `min_horizon`, the prefix the caller must still commit). Truncation is
//    the mechanism that can actually recover — it excises poisoned tail
//    slots while keeping the committed prefix intact. Retries run on a
//    throwaway solver so the persistent solver's warm-start bank (which is
//    checkpointed) is never perturbed by a degraded attempt.
//
//  - If every retry fails, the attempt-0 fallback solution (carry the
//    cache, serve everything from the BS) is returned unchanged and the
//    caller's own degradation chain (RobustController: full -> warm-reuse
//    -> BS-only) takes over.
//
// Every step emits a typed SupervisionEvent. When the caller passes neither
// a deadline nor a log, supervised_solve is exactly one plain solve() —
// the clean path stays bitwise-transparent.
#pragma once

#include <cstddef>
#include <vector>

#include "core/primal_dual.hpp"
#include "runtime/deadline.hpp"
#include "solver/status.hpp"

namespace mdo::runtime {

enum class SupervisionEventKind {
  kDeadlineExpired,  // budget ran out; the anytime incumbent was served
  kSolveFailure,     // a solve returned the non-finite-input fallback
  kRetry,            // a backoff retry (relaxed tolerance, halved horizon)
  kRecovered,        // a retry produced a usable solution
  kExhausted,        // all retries failed; the caller must degrade further
};

constexpr const char* to_string(SupervisionEventKind kind) {
  switch (kind) {
    case SupervisionEventKind::kDeadlineExpired: return "deadline_expired";
    case SupervisionEventKind::kSolveFailure: return "solve_failure";
    case SupervisionEventKind::kRetry: return "retry";
    case SupervisionEventKind::kRecovered: return "recovered";
    case SupervisionEventKind::kExhausted: return "exhausted";
  }
  return "?";
}

struct SupervisionEvent {
  std::size_t slot = 0;     // decision slot the solve belongs to
  SupervisionEventKind kind = SupervisionEventKind::kSolveFailure;
  std::size_t attempt = 0;  // 0 = primary solve, 1.. = retries
  std::size_t horizon = 0;  // window length of that attempt
  solver::SolveStatus status = solver::SolveStatus::kConverged;
  double gap = 0.0;         // relative gap of that attempt's solution
};

/// Event sink plus aggregate counters; one per simulation run. Accessed
/// only from the serial decide() path.
struct SupervisionLog {
  std::vector<SupervisionEvent> events;
  std::size_t deadline_expirations = 0;
  std::size_t solve_failures = 0;
  std::size_t retries = 0;
  std::size_t recoveries = 0;

  void record(SupervisionEvent event);
  void clear();
};

struct SupervisionOptions {
  /// Backoff retries after a failed primary solve.
  std::size_t max_retries = 2;
  /// Tolerance multiplier per retry: attempt i solves to epsilon * relax^i.
  double tolerance_relax = 10.0;
  /// Halve the horizon on each retry (never below the caller's
  /// min_horizon). Disabling leaves only the tolerance relaxation, which
  /// cannot recover from poisoned input — kept as a knob for experiments.
  bool halve_horizon = true;
};

/// Solves `problem` on `solver` under the supervision policy above.
///
/// `deadline` may be null (unlimited). `log` may be null; retries are then
/// disabled as well — an unsupervised call is exactly solver.solve(), which
/// keeps plain controllers bit-identical to their pre-runtime behavior.
/// `min_horizon` is the shortest window a truncated retry may solve (the
/// prefix the caller commits: 1 for RHC, the commitment block for FHC).
core::HorizonSolution supervised_solve(core::PrimalDualSolver& solver,
                                       const core::HorizonProblem& problem,
                                       const linalg::Vec* warm_mu,
                                       DeadlineToken* deadline,
                                       const SupervisionOptions& options,
                                       SupervisionLog* log, std::size_t slot,
                                       std::size_t min_horizon);

}  // namespace mdo::runtime
