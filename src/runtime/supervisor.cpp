#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mdo::runtime {

namespace {

/// Window prefix of `problem` with the first `horizon` slots — the
/// truncated subproblem of a backoff retry.
core::HorizonProblem truncate_problem(const core::HorizonProblem& problem,
                                      std::size_t horizon) {
  core::HorizonProblem out;
  out.config = problem.config;
  out.use_sparse_demand = problem.use_sparse_demand;
  out.initial_cache = problem.initial_cache;
  for (std::size_t t = 0; t < horizon; ++t) {
    if (problem.use_sparse_demand) {
      out.sparse_demand.push_back(problem.sparse_demand.slot(t));
    } else {
      out.demand.push_back(problem.demand.slot(t));
    }
  }
  return out;
}

bool usable(const core::HorizonSolution& solution) {
  return solution.status != solver::SolveStatus::kNonFiniteInput &&
         std::isfinite(solution.upper_bound);
}

}  // namespace

void SupervisionLog::record(SupervisionEvent event) {
  switch (event.kind) {
    case SupervisionEventKind::kDeadlineExpired: ++deadline_expirations; break;
    case SupervisionEventKind::kSolveFailure: ++solve_failures; break;
    case SupervisionEventKind::kRetry: ++retries; break;
    case SupervisionEventKind::kRecovered: ++recoveries; break;
    case SupervisionEventKind::kExhausted: break;
  }
  events.push_back(event);
}

void SupervisionLog::clear() {
  events.clear();
  deadline_expirations = 0;
  solve_failures = 0;
  retries = 0;
  recoveries = 0;
}

core::HorizonSolution supervised_solve(core::PrimalDualSolver& solver,
                                       const core::HorizonProblem& problem,
                                       const linalg::Vec* warm_mu,
                                       DeadlineToken* deadline,
                                       const SupervisionOptions& options,
                                       SupervisionLog* log, std::size_t slot,
                                       std::size_t min_horizon) {
  core::HorizonSolution primary = solver.solve(problem, warm_mu, deadline);

  auto record = [&](SupervisionEventKind kind, std::size_t attempt,
                    std::size_t horizon, const core::HorizonSolution& sol) {
    if (log == nullptr) return;
    SupervisionEvent event;
    event.slot = slot;
    event.kind = kind;
    event.attempt = attempt;
    event.horizon = horizon;
    event.status = sol.status;
    event.gap = sol.gap();
    log->record(event);
  };

  if (primary.status == solver::SolveStatus::kDeadlineExpired &&
      usable(primary)) {
    // Anytime semantics: the incumbent is the best bounded-latency answer a
    // retry could not improve within an already-expired budget. Log & serve.
    record(SupervisionEventKind::kDeadlineExpired, 0, problem.horizon(),
           primary);
    return primary;
  }
  if (usable(primary)) return primary;  // clean path: exactly one solve

  record(SupervisionEventKind::kSolveFailure, 0, problem.horizon(), primary);
  // Unsupervised callers (no log) keep the legacy single-solve behavior:
  // the safe fallback schedule is returned and the controller's own
  // degradation path handles it — no new code runs.
  if (log == nullptr) return primary;

  const std::size_t full_horizon = problem.horizon();
  const std::size_t floor_horizon =
      std::min(std::max<std::size_t>(min_horizon, 1), full_horizon);
  std::size_t prev_horizon = full_horizon;
  for (std::size_t attempt = 1; attempt <= options.max_retries; ++attempt) {
    std::size_t horizon = full_horizon;
    if (options.halve_horizon) {
      horizon = std::max(floor_horizon, full_horizon >> attempt);
    }
    if (horizon == prev_horizon && attempt > 1) {
      // The window cannot shrink further; re-solving the identical poisoned
      // prefix would fail identically.
      break;
    }
    prev_horizon = horizon;

    // Retries run on a throwaway solver so a degraded attempt never
    // perturbs the persistent warm-start bank (which is checkpointed and
    // must stay bit-identical to the clean trajectory).
    core::PrimalDualOptions relaxed = solver.options();
    relaxed.epsilon *= std::pow(options.tolerance_relax,
                                static_cast<double>(attempt));
    core::PrimalDualSolver retry_solver(relaxed);

    const core::HorizonProblem truncated =
        horizon == full_horizon ? core::HorizonProblem{}
                                : truncate_problem(problem, horizon);
    const core::HorizonProblem& attempt_problem =
        horizon == full_horizon ? problem : truncated;

    core::HorizonSolution retry =
        retry_solver.solve(attempt_problem, nullptr, deadline);
    record(SupervisionEventKind::kRetry, attempt, horizon, retry);
    if (usable(retry)) {
      record(SupervisionEventKind::kRecovered, attempt, horizon, retry);
      MDO_TRACE("supervisor: slot " << slot << " recovered at attempt "
                                    << attempt << " (horizon " << horizon
                                    << ")");
      return retry;
    }
  }

  record(SupervisionEventKind::kExhausted, options.max_retries, prev_horizon,
         primary);
  MDO_WARN("supervisor: slot " << slot
                               << " exhausted retries; serving the safe "
                                  "fallback schedule");
  return primary;
}

}  // namespace mdo::runtime
