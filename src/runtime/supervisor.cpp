#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mdo::runtime {

namespace {

/// Window prefix of `problem` with the first `horizon` slots — the
/// truncated subproblem of a backoff retry. HorizonProblem references its
/// demand window, so the holder owns the truncated trace and the embedded
/// problem points into the holder (fill() rewires the pointers in place —
/// the holder must not be moved afterwards).
struct TruncatedProblem {
  model::DemandTrace demand;
  model::SparseDemandTrace sparse_demand;
  core::HorizonProblem problem;

  void fill(const core::HorizonProblem& source, std::size_t horizon) {
    problem.config = source.config;
    problem.initial_cache = source.initial_cache;
    if (source.use_sparse()) {
      sparse_demand.clear();
      for (std::size_t t = 0; t < horizon; ++t) {
        sparse_demand.push_back(source.sparse_demand->slot(t));
      }
      problem.sparse_demand = &sparse_demand;
      problem.demand = nullptr;
    } else {
      demand.clear();
      for (std::size_t t = 0; t < horizon; ++t) {
        demand.push_back(source.demand->slot(t));
      }
      problem.demand = &demand;
      problem.sparse_demand = nullptr;
    }
  }
};

bool usable(const core::HorizonSolution& solution) {
  return solution.status != solver::SolveStatus::kNonFiniteInput &&
         solution.status != solver::SolveStatus::kWorkerFailure &&
         std::isfinite(solution.upper_bound);
}

}  // namespace

void SupervisionLog::record(SupervisionEvent event) {
  switch (event.kind) {
    case SupervisionEventKind::kDeadlineExpired: ++deadline_expirations; break;
    case SupervisionEventKind::kSolveFailure: ++solve_failures; break;
    case SupervisionEventKind::kRetry: ++retries; break;
    case SupervisionEventKind::kRecovered: ++recoveries; break;
    case SupervisionEventKind::kExhausted: break;
  }
  events.push_back(event);
}

void SupervisionLog::clear() {
  events.clear();
  deadline_expirations = 0;
  solve_failures = 0;
  retries = 0;
  recoveries = 0;
}

core::HorizonSolution supervised_solve(core::PrimalDualSolver& solver,
                                       const core::HorizonProblem& problem,
                                       const linalg::Vec* warm_mu,
                                       DeadlineToken* deadline,
                                       const SupervisionOptions& options,
                                       SupervisionLog* log, std::size_t slot,
                                       std::size_t min_horizon) {
  core::HorizonSolution primary = solver.solve(problem, warm_mu, deadline);

  auto record = [&](SupervisionEventKind kind, std::size_t attempt,
                    std::size_t horizon, const core::HorizonSolution& sol) {
    if (log == nullptr) return;
    SupervisionEvent event;
    event.slot = slot;
    event.kind = kind;
    event.attempt = attempt;
    event.horizon = horizon;
    event.status = sol.status;
    event.gap = sol.gap();
    log->record(event);
  };

  if (primary.status == solver::SolveStatus::kDeadlineExpired &&
      usable(primary)) {
    // Anytime semantics: the incumbent is the best bounded-latency answer a
    // retry could not improve within an already-expired budget. Log & serve.
    record(SupervisionEventKind::kDeadlineExpired, 0, problem.horizon(),
           primary);
    return primary;
  }
  if (usable(primary)) return primary;  // clean path: exactly one solve

  record(SupervisionEventKind::kSolveFailure, 0, problem.horizon(), primary);

  if (primary.status == solver::SolveStatus::kWorkerFailure) {
    // A shard worker subprocess died. Unlike a poisoned window this failure
    // is transient, and the solver's warm state was deliberately left
    // untouched by the aborted solve — so the retry runs the SAME problem
    // on the SAME solver (no tolerance relax, no truncation): it respawns
    // the worker fleet and reproduces the lost solve bit-identically.
    for (std::size_t attempt = 1; attempt <= options.max_retries; ++attempt) {
      core::HorizonSolution retry = solver.solve(problem, warm_mu, deadline);
      record(SupervisionEventKind::kRetry, attempt, problem.horizon(), retry);
      if (usable(retry)) {
        record(SupervisionEventKind::kRecovered, attempt, problem.horizon(),
               retry);
        MDO_TRACE("supervisor: slot " << slot
                                      << " recovered from worker failure at "
                                         "attempt "
                                      << attempt);
        return retry;
      }
      if (retry.status != solver::SolveStatus::kWorkerFailure) {
        primary = std::move(retry);
        break;
      }
    }
    record(SupervisionEventKind::kExhausted, options.max_retries,
           problem.horizon(), primary);
    MDO_WARN("supervisor: slot "
             << slot
             << " exhausted worker-failure retries; serving the safe "
                "fallback schedule");
    return primary;
  }

  // Unsupervised callers (no log) keep the legacy single-solve behavior:
  // the safe fallback schedule is returned and the controller's own
  // degradation path handles it — no new code runs.
  if (log == nullptr) return primary;

  const std::size_t full_horizon = problem.horizon();
  const std::size_t floor_horizon =
      std::min(std::max<std::size_t>(min_horizon, 1), full_horizon);
  std::size_t prev_horizon = full_horizon;
  for (std::size_t attempt = 1; attempt <= options.max_retries; ++attempt) {
    std::size_t horizon = full_horizon;
    if (options.halve_horizon) {
      horizon = std::max(floor_horizon, full_horizon >> attempt);
    }
    if (horizon == prev_horizon && attempt > 1) {
      // The window cannot shrink further; re-solving the identical poisoned
      // prefix would fail identically.
      break;
    }
    prev_horizon = horizon;

    // Retries run on a throwaway solver so a degraded attempt never
    // perturbs the persistent warm-start bank (which is checkpointed and
    // must stay bit-identical to the clean trajectory).
    core::PrimalDualOptions relaxed = solver.options();
    relaxed.epsilon *= std::pow(options.tolerance_relax,
                                static_cast<double>(attempt));
    core::PrimalDualSolver retry_solver(relaxed);

    TruncatedProblem truncated;
    if (horizon != full_horizon) truncated.fill(problem, horizon);
    const core::HorizonProblem& attempt_problem =
        horizon == full_horizon ? problem : truncated.problem;

    core::HorizonSolution retry =
        retry_solver.solve(attempt_problem, nullptr, deadline);
    record(SupervisionEventKind::kRetry, attempt, horizon, retry);
    if (usable(retry)) {
      record(SupervisionEventKind::kRecovered, attempt, horizon, retry);
      MDO_TRACE("supervisor: slot " << slot << " recovered at attempt "
                                    << attempt << " (horizon " << horizon
                                    << ")");
      return retry;
    }
  }

  record(SupervisionEventKind::kExhausted, options.max_retries, prev_horizon,
         primary);
  MDO_WARN("supervisor: slot " << slot
                               << " exhausted retries; serving the safe "
                                  "fallback schedule");
  return primary;
}

}  // namespace mdo::runtime
