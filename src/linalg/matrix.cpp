#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    MDO_REQUIRE(r.size() == cols_, "all matrix rows must have equal length");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  MDO_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  MDO_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

Vec Matrix::multiply(const Vec& x) const {
  MDO_REQUIRE(x.size() == cols_, "matvec: size mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vec Matrix::multiply_transpose(const Vec& x) const {
  MDO_REQUIRE(x.size() == rows_, "matvec^T: size mismatch");
  Vec out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row_ptr[c] * xr;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  MDO_REQUIRE(cols_ == other.rows_, "matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

void Matrix::swap_rows(std::size_t a, std::size_t b) {
  MDO_REQUIRE(a < rows_ && b < rows_, "swap_rows: index out of range");
  if (a == b) return;
  for (std::size_t c = 0; c < cols_; ++c)
    std::swap((*this)(a, c), (*this)(b, c));
}

Vec Matrix::row(std::size_t r) const {
  MDO_REQUIRE(r < rows_, "row: index out of range");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  MDO_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
              "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

}  // namespace mdo::linalg
