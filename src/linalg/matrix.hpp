// Dense row-major matrix.
//
// Used by the simplex tableau, the LU factorization, and tests. The class
// maintains the invariant data_.size() == rows_ * cols_ and checks index
// bounds in at() (operator() is unchecked for hot loops).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vec.hpp"

namespace mdo::linalg {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Unchecked element access (hot paths).
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Matrix-vector product; x.size() must equal cols().
  Vec multiply(const Vec& x) const;

  /// Transposed matrix-vector product; x.size() must equal rows().
  Vec multiply_transpose(const Vec& x) const;

  /// Matrix-matrix product; this->cols() must equal other.rows().
  Matrix multiply(const Matrix& other) const;

  Matrix transpose() const;

  /// Swaps two rows in place.
  void swap_rows(std::size_t a, std::size_t b);

  /// Copy of row r.
  Vec row(std::size_t r) const;

  /// Raw storage (row-major, 64-byte aligned), e.g. for norm computations
  /// in tests.
  const Vec& data() const { return data_; }

  /// Frobenius norm of (a - b); throws on shape mismatch.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

}  // namespace mdo::linalg
