// LU factorization with partial pivoting, and linear solves built on it.
//
// Used by tests (verifying solver KKT systems) and available to users of the
// library; the simplex implementation keeps its own tableau instead.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vec.hpp"

namespace mdo::linalg {

/// PA = LU factorization of a square matrix.
class LuDecomposition {
 public:
  /// Factorizes a square matrix; throws SolverError when singular
  /// (pivot magnitude below `pivot_tol`).
  explicit LuDecomposition(const Matrix& a, double pivot_tol = 1e-12);

  /// Solves A x = b.
  Vec solve(const Vec& b) const;

  /// Determinant of A (sign includes the permutation parity).
  double determinant() const;

  std::size_t dimension() const { return lu_.rows(); }

 private:
  Matrix lu_;                    // combined L (unit lower) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

/// Convenience: solves A x = b with a fresh factorization.
Vec lu_solve(const Matrix& a, const Vec& b);

}  // namespace mdo::linalg
