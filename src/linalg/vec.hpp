// Dense vector operations (BLAS level-1 style).
//
// Vectors are plain std::vector<double>; the solver stack composes these
// free functions rather than introducing an expression-template layer the
// project does not need.
#pragma once

#include <vector>

namespace mdo::linalg {

using Vec = std::vector<double>;

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);

/// y += alpha * x; sizes must match.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(Vec& x, double alpha);

/// Euclidean norm.
double norm2(const Vec& x);

/// Max-abs norm.
double norm_inf(const Vec& x);

/// Sum of entries.
double sum(const Vec& x);

/// Element-wise clamp of every entry into [lo, hi].
void clamp(Vec& x, double lo, double hi);

/// a - b as a new vector; sizes must match.
Vec subtract(const Vec& a, const Vec& b);

/// a + b as a new vector; sizes must match.
Vec add(const Vec& a, const Vec& b);

/// True when |a[i] - b[i]| <= tol for all i (and sizes match).
bool approx_equal(const Vec& a, const Vec& b, double tol);

}  // namespace mdo::linalg
