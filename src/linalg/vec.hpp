// Dense vector operations (BLAS level-1 style).
//
// Vectors are plain std::vector<double>; the solver stack composes these
// free functions rather than introducing an expression-template layer the
// project does not need.
#pragma once

#include <utility>
#include <vector>

namespace mdo::linalg {

using Vec = std::vector<double>;

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);

/// y += alpha * x; sizes must match.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(Vec& x, double alpha);

/// Euclidean norm.
double norm2(const Vec& x);

/// Max-abs norm.
double norm_inf(const Vec& x);

/// Sum of entries.
double sum(const Vec& x);

/// Element-wise clamp of every entry into [lo, hi].
void clamp(Vec& x, double lo, double hi);

/// out = y - alpha * g, single pass; sizes must match and out must be
/// pre-sized (the hot-path kernels never allocate).
void scaled_sub(const Vec& y, double alpha, const Vec& g, Vec& out);

/// out[i] = clamp(y[i] - alpha * g[i], lo[i], hi[i]) — the fused gradient
/// step + box projection used by the first-order and knapsack-projection
/// inner loops. out must be pre-sized.
void scaled_sub_project_box(const Vec& y, double alpha, const Vec& g,
                            const Vec& lo, const Vec& hi, Vec& out);

/// Returns {a . x, b . x} in one pass over x. Each accumulator sums in
/// index order, so the results are bit-identical to two separate dot()s.
std::pair<double, double> dot_pair(const Vec& a, const Vec& b, const Vec& x);

/// sum_i (1 - a[i]) * b[i] over raw spans, accumulated in index order —
/// the residual-traffic kernel of the cost functions (eq. 5).
double residual_dot(const double* a, const double* b, std::size_t n);

/// a . b over raw spans, accumulated in index order.
double dot_span(const double* a, const double* b, std::size_t n);

/// a - b as a new vector; sizes must match.
Vec subtract(const Vec& a, const Vec& b);

/// a + b as a new vector; sizes must match.
Vec add(const Vec& a, const Vec& b);

/// True when |a[i] - b[i]| <= tol for all i (and sizes match).
bool approx_equal(const Vec& a, const Vec& b, double tol);

}  // namespace mdo::linalg
