// Dense vector operations (BLAS level-1 style).
//
// Vectors are std::vector<double> over a 64-byte-aligned allocator; the
// solver stack composes these free functions rather than introducing an
// expression-template layer the project does not need.
//
// Determinism contract (DESIGN.md §12): every reduction below accumulates
// with four fixed lanes combined as (l0+l1)+(l2+l3) plus a serial tail, in
// source-spelled order, so MDO_SIMD=ON and =OFF builds return bit-identical
// values. Map kernels carry MDO_SIMD_LOOP — element-independent, so lane
// width cannot change a bit either.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/simd.hpp"

namespace mdo::linalg {

/// Minimal stateless allocator handing out 64-byte-aligned storage so the
/// vectorized kernels never touch an unaligned-load penalty path.
template <class T>
class AlignedAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(util::kVecAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(util::kVecAlignment));
  }

  template <class U>
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator<U>&) noexcept {
    return true;
  }
};

using Vec = std::vector<double, AlignedAllocator<double>>;

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);

/// y += alpha * x; sizes must match.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(Vec& x, double alpha);

/// Euclidean norm.
double norm2(const Vec& x);

/// Max-abs norm.
double norm_inf(const Vec& x);

/// Sum of entries.
double sum(const Vec& x);

/// Element-wise clamp of every entry into [lo, hi].
void clamp(Vec& x, double lo, double hi);

/// out = y - alpha * g, single pass; sizes must match and out must be
/// pre-sized (the hot-path kernels never allocate).
void scaled_sub(const Vec& y, double alpha, const Vec& g, Vec& out);

/// out[i] = clamp(y[i] - alpha * g[i], lo[i], hi[i]) — the fused gradient
/// step + box projection used by the first-order and knapsack-projection
/// inner loops. out must be pre-sized.
void scaled_sub_project_box(const Vec& y, double alpha, const Vec& g,
                            const Vec& lo, const Vec& hi, Vec& out);

/// mu[i] = max(0, mu[i] + delta * (y[i] - x[i])) over raw spans — the fused
/// projected dual-ascent step. Per-coordinate arithmetic matches the scalar
/// update the shard core historically applied, so dense and compact mu
/// paths agree bitwise.
void dual_ascent_project(double* mu, const double* y, const double* x,
                         double delta, std::size_t n);

/// Returns {a . x, b . x} in one pass over x. Each accumulator sums with
/// the shared fixed-lane scheme, so the results are bit-identical to two
/// separate dot()s.
std::pair<double, double> dot_pair(const Vec& a, const Vec& b, const Vec& x);

/// sum_i (1 - a[i]) * b[i] over raw spans — the residual-traffic kernel of
/// the cost functions (eq. 5).
double residual_dot(const double* a, const double* b, std::size_t n);

/// a . b over raw spans.
double dot_span(const double* a, const double* b, std::size_t n);

/// a - b as a new vector; sizes must match.
Vec subtract(const Vec& a, const Vec& b);

/// a + b as a new vector; sizes must match.
Vec add(const Vec& a, const Vec& b);

/// True when |a[i] - b[i]| <= tol for all i (and sizes match).
bool approx_equal(const Vec& a, const Vec& b, double tol);

}  // namespace mdo::linalg
