#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace mdo::linalg {

// Determinism contract (DESIGN.md §12): MAP loops (one output per input
// coordinate, no cross-coordinate flow) carry MDO_SIMD_LOOP — each lane
// computes the exact expression the scalar loop computes, so SIMD and
// scalar builds are bitwise-identical. REDUCTIONS stay strictly serial in
// ascending index order and are NEVER vectorized or lane-split: the sparse
// demand paths accumulate only the nonzero terms of the corresponding dense
// sums (model/sparse_demand.hpp), and skipping exact zeros preserves the
// result only under left-to-right association. Lane accumulators would
// regroup the dense terms and break the repo-wide sparse-vs-dense bitwise
// invariant.

double dot(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  MDO_ASSERT_VEC_ALIGNED(a.data());
  MDO_ASSERT_VEC_ALIGNED(b.data());
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  MDO_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  MDO_ASSERT_VEC_ALIGNED(x.data());
  MDO_ASSERT_VEC_ALIGNED(y.data());
  const double* px = x.data();
  double* py = y.data();
  const std::size_t n = x.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void scale(Vec& x, double alpha) {
  double* px = x.data();
  const std::size_t n = x.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) px[i] *= alpha;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

double sum(const Vec& x) {
  double acc = 0.0;
  for (const double v : x) acc += v;
  return acc;
}

void clamp(Vec& x, double lo, double hi) {
  MDO_REQUIRE(lo <= hi, "clamp: lo must be <= hi");
  double* px = x.data();
  const std::size_t n = x.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) px[i] = std::clamp(px[i], lo, hi);
}

void scaled_sub(const Vec& y, double alpha, const Vec& g, Vec& out) {
  MDO_REQUIRE(y.size() == g.size() && y.size() == out.size(),
              "scaled_sub: size mismatch");
  MDO_ASSERT_VEC_ALIGNED(y.data());
  MDO_ASSERT_VEC_ALIGNED(g.data());
  MDO_ASSERT_VEC_ALIGNED(out.data());
  const double* py = y.data();
  const double* pg = g.data();
  double* po = out.data();
  const std::size_t n = y.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) po[i] = py[i] - alpha * pg[i];
}

void scaled_sub_project_box(const Vec& y, double alpha, const Vec& g,
                            const Vec& lo, const Vec& hi, Vec& out) {
  MDO_REQUIRE(y.size() == g.size() && y.size() == lo.size() &&
                  y.size() == hi.size() && y.size() == out.size(),
              "scaled_sub_project_box: size mismatch");
  MDO_ASSERT_VEC_ALIGNED(y.data());
  MDO_ASSERT_VEC_ALIGNED(out.data());
  const double* py = y.data();
  const double* pg = g.data();
  const double* plo = lo.data();
  const double* phi = hi.data();
  double* po = out.data();
  const std::size_t n = y.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = std::clamp(py[i] - alpha * pg[i], plo[i], phi[i]);
  }
}

void dual_ascent_project(double* mu, const double* y, const double* x,
                         double delta, std::size_t n) {
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    mu[i] = std::max(0.0, mu[i] + delta * (y[i] - x[i]));
  }
}

std::pair<double, double> dot_pair(const Vec& a, const Vec& b, const Vec& x) {
  MDO_REQUIRE(a.size() == x.size() && b.size() == x.size(),
              "dot_pair: size mismatch");
  MDO_ASSERT_VEC_ALIGNED(a.data());
  MDO_ASSERT_VEC_ALIGNED(b.data());
  MDO_ASSERT_VEC_ALIGNED(x.data());
  const double* pa = a.data();
  const double* pb = b.data();
  const double* px = x.data();
  // One pass, two serial accumulators in the same index order as dot(), so
  // each component equals the separate dot() bitwise.
  double acc_a = 0.0;
  double acc_b = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    acc_a += pa[i] * px[i];
    acc_b += pb[i] * px[i];
  }
  return {acc_a, acc_b};
}

double residual_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += (1.0 - a[i]) * b[i];
  return acc;
}

double dot_span(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

Vec subtract(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vec out(a.size());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const std::size_t n = a.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  return out;
}

Vec add(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec out(a.size());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const std::size_t n = a.size();
  MDO_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  return out;
}

bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace mdo::linalg
