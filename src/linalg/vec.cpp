#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdo::linalg {

double dot(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  MDO_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& x, double alpha) {
  for (auto& v : x) v *= alpha;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

double sum(const Vec& x) {
  double acc = 0.0;
  for (const double v : x) acc += v;
  return acc;
}

void clamp(Vec& x, double lo, double hi) {
  MDO_REQUIRE(lo <= hi, "clamp: lo must be <= hi");
  for (auto& v : x) v = std::clamp(v, lo, hi);
}

Vec subtract(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec add(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace mdo::linalg
