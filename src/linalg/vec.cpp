#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdo::linalg {

double dot(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  MDO_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& x, double alpha) {
  for (auto& v : x) v *= alpha;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

double sum(const Vec& x) {
  double acc = 0.0;
  for (const double v : x) acc += v;
  return acc;
}

void clamp(Vec& x, double lo, double hi) {
  MDO_REQUIRE(lo <= hi, "clamp: lo must be <= hi");
  for (auto& v : x) v = std::clamp(v, lo, hi);
}

void scaled_sub(const Vec& y, double alpha, const Vec& g, Vec& out) {
  MDO_REQUIRE(y.size() == g.size() && y.size() == out.size(),
              "scaled_sub: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] - alpha * g[i];
}

void scaled_sub_project_box(const Vec& y, double alpha, const Vec& g,
                            const Vec& lo, const Vec& hi, Vec& out) {
  MDO_REQUIRE(y.size() == g.size() && y.size() == lo.size() &&
                  y.size() == hi.size() && y.size() == out.size(),
              "scaled_sub_project_box: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = std::clamp(y[i] - alpha * g[i], lo[i], hi[i]);
  }
}

std::pair<double, double> dot_pair(const Vec& a, const Vec& b, const Vec& x) {
  MDO_REQUIRE(a.size() == x.size() && b.size() == x.size(),
              "dot_pair: size mismatch");
  double acc_a = 0.0;
  double acc_b = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc_a += a[i] * x[i];
    acc_b += b[i] * x[i];
  }
  return {acc_a, acc_b};
}

double residual_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += (1.0 - a[i]) * b[i];
  return acc;
}

double dot_span(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

Vec subtract(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec add(const Vec& a, const Vec& b) {
  MDO_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace mdo::linalg
