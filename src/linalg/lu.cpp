#include "linalg/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mdo::linalg {

LuDecomposition::LuDecomposition(const Matrix& a, double pivot_tol) : lu_(a) {
  MDO_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot_row = col;
    double pivot_mag = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tol) {
      throw SolverError("LU factorization: matrix is singular to tolerance");
    }
    if (pivot_row != col) {
      lu_.swap_rows(pivot_row, col);
      std::swap(perm_[pivot_row], perm_[col]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) / pivot;
      lu_(r, col) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

Vec LuDecomposition::solve(const Vec& b) const {
  const std::size_t n = lu_.rows();
  MDO_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  // Apply permutation, then forward/backward substitution.
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vec lu_solve(const Matrix& a, const Vec& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace mdo::linalg
