#include "online/robust_controller.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vec.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/deadline.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace mdo::online {

namespace {

bool demand_clean(model::SlotDemandView demand) {
  for (std::size_t n = 0; n < demand.num_sbs(); ++n) {
    const model::SbsDemandView d = demand.sbs(n);
    if (d.is_sparse()) {
      const auto& sparse = *d.sparse();
      for (std::size_t m = 0; m < sparse.num_classes(); ++m) {
        for (const auto* it = sparse.row_begin(m); it != sparse.row_end(m);
             ++it) {
          if (!std::isfinite(it->rate) || it->rate < 0.0) return false;
        }
      }
    } else {
      for (const double rate : d.dense()->data()) {
        if (!std::isfinite(rate) || rate < 0.0) return false;
      }
    }
  }
  return true;
}

/// Dense copy of the observed demand with NaN/Inf/negative rates zeroed —
/// the least-assuming repair: a rate we cannot trust contributes no traffic.
model::SlotDemand sanitize_demand(model::SlotDemandView demand) {
  model::SlotDemand out = demand.to_dense();
  for (auto& sbs_demand : out) {
    for (double& rate : sbs_demand.data()) {
      if (!std::isfinite(rate) || rate < 0.0) rate = 0.0;
    }
  }
  return out;
}

bool decision_finite(const model::SlotDecision& decision) {
  for (std::size_t n = 0; n < decision.load.num_sbs(); ++n) {
    for (const double y : decision.load.sbs_data(n)) {
      if (!std::isfinite(y)) return false;
    }
  }
  return true;
}

/// Per-SBS content scores (total observed request volume) for eviction /
/// top-C ranking: one column-sum pass instead of K content_total calls.
linalg::Vec content_scores(model::SbsDemandView demand) {
  linalg::Vec scores;
  demand.content_totals_into(scores);
  return scores;
}

}  // namespace

RobustController::RobustController(Controller& inner,
                                   RobustControllerOptions options)
    : inner_(&inner), options_(options) {
  MDO_REQUIRE(options_.max_decide_seconds >= 0.0,
              "decide budget must be >= 0");
}

std::string RobustController::name() const {
  return "Robust(" + inner_->name() + ")";
}

void RobustController::reset(const model::ProblemInstance& instance) {
  inner_->reset(instance);
  instance_ = &instance;
  last_executed_ = {};
  have_last_ = false;
  last_substituted_ = false;
  events_.clear();
  slot_kinds_.clear();
  slot_details_.clear();
  level_counts_ = {};
}

void RobustController::observe(std::size_t slot,
                               const model::SlotDecision& executed) {
  last_executed_ = executed;
  have_last_ = true;
  if (last_substituted_) {
    last_substituted_ = false;
    inner_->resync(slot, executed);
  } else {
    inner_->observe(slot, executed);
  }
}

void RobustController::resync(std::size_t slot,
                              const model::SlotDecision& executed) {
  last_executed_ = executed;
  have_last_ = true;
  last_substituted_ = false;
  inner_->resync(slot, executed);
}

model::SlotDecision RobustController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "Robust: reset() must be called first");
  try {
    return decide_guarded(ctx);
  } catch (const std::exception& e) {
    // Last-ditch guard: even the fallback chain failed (allocation, a broken
    // instance...). An empty cache with y = 0 is feasible for any config.
    MDO_WARN("RobustController: fallback chain failed at slot "
             << ctx.slot << ": " << e.what());
    slot_kinds_.push_back(DegradationKind::kSolverFailure);
    slot_details_.push_back(e.what());
    model::SlotDecision safe;
    safe.cache = model::CacheState(instance_->config);
    safe.load = model::LoadAllocation(instance_->config);
    return finish(ctx.slot, FallbackLevel::kBsOnly, std::move(safe),
                  /*substituted=*/true);
  }
}

model::SlotDecision RobustController::decide_guarded(
    const DecisionContext& ctx) {
  const model::NetworkConfig& effective =
      ctx.effective_config != nullptr ? *ctx.effective_config
                                      : instance_->config;
  MDO_REQUIRE(ctx.has_demand(), "Robust: demand must be set");

  // ---- Sanitize the observed world.
  const bool demand_ok = demand_clean(ctx.demand());
  model::SlotDemand sanitized;
  model::SlotDemandView observed = ctx.demand();
  if (!demand_ok) {
    slot_kinds_.push_back(DegradationKind::kCorruptDemand);
    slot_details_.push_back("observed demand held NaN/Inf/negative rates");
    sanitized = sanitize_demand(ctx.demand());
    observed = model::SlotDemandView(sanitized);
  }

  // Projects `decision` onto the effective capacities: evicts the lowest-
  // score contents of over-capacity SBSs (outage => capacity 0 => evict
  // all), zeroes y on evicted contents, and clamps y into [0, 1]. Returns
  // whether the cache was changed (the executed trajectory then differs
  // from the wrapped controller's own, so observe() must resync).
  auto project_capacity = [&](model::SlotDecision& decision,
                              FallbackLevel level) {
    bool evicted = false;
    for (std::size_t n = 0; n < effective.num_sbs(); ++n) {
      const std::size_t capacity = effective.sbs[n].cache_capacity;
      if (decision.cache.count(n) > capacity) {
        evicted = true;
        const linalg::Vec scores = content_scores(observed.sbs(n));
        std::vector<std::size_t> cached;
        for (std::size_t k = 0; k < effective.num_contents; ++k) {
          if (decision.cache.cached(n, k)) cached.push_back(k);
        }
        std::stable_sort(cached.begin(), cached.end(),
                         [&scores](std::size_t a, std::size_t b) {
                           return scores[a] > scores[b];
                         });
        for (std::size_t i = capacity; i < cached.size(); ++i) {
          decision.cache.set(n, cached[i], false);
        }
      }
      const std::size_t classes = effective.sbs[n].num_classes();
      for (std::size_t m = 0; m < classes; ++m) {
        for (std::size_t k = 0; k < effective.num_contents; ++k) {
          double& y = decision.load.at(n, m, k);
          y = std::isfinite(y) ? std::clamp(y, 0.0, 1.0) : 0.0;
          if (!decision.cache.cached(n, k)) y = 0.0;
        }
      }
      // Best-effort bandwidth projection against the observed demand; the
      // simulator still repairs against the truth afterwards.
      const double load = model::sbs_load(decision.load, n, observed.sbs(n));
      if (load > effective.sbs[n].bandwidth && load > 0.0) {
        const double scale = effective.sbs[n].bandwidth / load;
        for (double& y : decision.load.sbs_data(n)) y *= scale;
      }
    }
    if (evicted) {
      DegradationEvent event;
      event.slot = ctx.slot;
      event.level = level;
      event.kind = DegradationKind::kOutageEviction;
      event.detail = "cache projected onto degraded capacities";
      events_.push_back(event);
    }
    return evicted;
  };

  // ---- Level 0: the wrapped controller's own solve.
  if (demand_ok) {
    try {
      // Per-slot budget. The caller's token wins; otherwise build one from
      // the options (logical checks preferred — they are deterministic).
      runtime::DeadlineToken local_token;
      runtime::DeadlineToken* token = ctx.deadline;
      if (token == nullptr) {
        if (options_.max_decide_checks > 0) {
          local_token =
              runtime::DeadlineToken::after_checks(options_.max_decide_checks);
          token = &local_token;
        } else if (options_.max_decide_seconds > 0.0) {
          local_token =
              runtime::DeadlineToken::after_seconds(options_.max_decide_seconds);
          token = &local_token;
        }
      }
      DecisionContext inner_ctx = ctx;
      inner_ctx.deadline = token;

      const Stopwatch watch;
      model::SlotDecision decision = inner_->decide(inner_ctx);
      const double elapsed = watch.elapsed_seconds();
      // Anytime-accept: a deadline-aware inner polled the token until it
      // expired and returned its best feasible incumbent — serve that
      // (recording the expiry) instead of discarding a usable decision.
      const bool anytime = token != nullptr && token->expired();
      if (anytime) {
        slot_kinds_.push_back(DegradationKind::kDeadlineExceeded);
        slot_details_.push_back("budget expired; serving anytime incumbent");
      }
      if (!anytime && options_.max_decide_seconds > 0.0 &&
          elapsed > options_.max_decide_seconds) {
        // The inner controller ignored the token (legacy / non-solver
        // controllers): the late result is discarded, level 1 serves.
        slot_kinds_.push_back(DegradationKind::kDeadlineExceeded);
        slot_details_.push_back("decide() took " + std::to_string(elapsed) +
                                "s");
      } else if (!decision_finite(decision)) {
        slot_kinds_.push_back(DegradationKind::kNonFiniteDecision);
        slot_details_.push_back("wrapped controller returned NaN/Inf load");
      } else {
        // Project only when the slot is actually degraded (or the inner
        // controller overfilled a cache): on a clean slot the wrapper must
        // return the inner decision bit for bit — clamping and bandwidth
        // scaling are the simulator repair's job.
        bool needs_projection = ctx.effective_config != nullptr;
        for (std::size_t n = 0; !needs_projection && n < effective.num_sbs();
             ++n) {
          needs_projection =
              decision.cache.count(n) > effective.sbs[n].cache_capacity;
        }
        bool cache_changed = false;
        if (needs_projection) {
          cache_changed = project_capacity(decision, FallbackLevel::kFull);
        }
        return finish(ctx.slot, FallbackLevel::kFull, std::move(decision),
                      /*substituted=*/cache_changed);
      }
    } catch (const std::exception& e) {
      slot_kinds_.push_back(ctx.predictor == nullptr
                                ? DegradationKind::kPredictorMissing
                                : DegradationKind::kSolverFailure);
      slot_details_.push_back(e.what());
    }
  }

  // ---- Level 1: reuse the last executed decision, re-projected feasible.
  if (have_last_) {
    model::SlotDecision decision = last_executed_;
    project_capacity(decision, FallbackLevel::kWarmReuse);
    return finish(ctx.slot, FallbackLevel::kWarmReuse, std::move(decision),
                  /*substituted=*/true);
  }

  // ---- Level 2: LRFU-style top-C caching on sanitized demand, y = 0.
  model::SlotDecision decision;
  decision.cache = model::CacheState(instance_->config);
  decision.load = model::LoadAllocation(instance_->config);
  for (std::size_t n = 0; n < effective.num_sbs(); ++n) {
    const linalg::Vec scores = content_scores(observed.sbs(n));
    std::vector<std::size_t> order(effective.num_contents);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&scores](std::size_t a, std::size_t b) {
                       return scores[a] > scores[b];
                     });
    const std::size_t capacity =
        std::min<std::size_t>(effective.sbs[n].cache_capacity, order.size());
    for (std::size_t i = 0; i < capacity; ++i) {
      decision.cache.set(n, order[i], true);
    }
  }
  return finish(ctx.slot, FallbackLevel::kBsOnly, std::move(decision),
                /*substituted=*/true);
}

model::SlotDecision RobustController::finish(std::size_t slot,
                                             FallbackLevel level,
                                             model::SlotDecision decision,
                                             bool substituted) {
  ++level_counts_[static_cast<std::size_t>(level)];
  last_substituted_ = substituted;
  for (std::size_t i = 0; i < slot_kinds_.size(); ++i) {
    DegradationEvent event;
    event.slot = slot;
    event.level = level;
    event.kind = slot_kinds_[i];
    event.detail = std::move(slot_details_[i]);
    events_.push_back(std::move(event));
  }
  slot_kinds_.clear();
  slot_details_.clear();
  // decide() callers that never invoke observe() (direct drivers) still get
  // warm reuse from the returned decision; observe() overwrites it with the
  // executed one.
  last_executed_ = decision;
  have_last_ = true;
  return decision;
}

void RobustController::save_state(util::BinaryWriter& w) const {
  MDO_REQUIRE(instance_ != nullptr, "Robust: reset() must be called first");
  w.boolean(have_last_);
  if (have_last_) runtime::write_decision(w, last_executed_);
  w.boolean(last_substituted_);
  for (const std::size_t count : level_counts_) w.size(count);
  w.size(events_.size());
  for (const DegradationEvent& event : events_) {
    w.size(event.slot);
    w.u8(static_cast<std::uint8_t>(event.level));
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.str(event.detail);
  }
  inner_->save_state(w);
}

void RobustController::restore_state(util::BinaryReader& r) {
  MDO_REQUIRE(instance_ != nullptr, "Robust: reset() must be called first");
  have_last_ = r.boolean();
  last_executed_ = have_last_ ? runtime::read_decision(r, instance_->config)
                              : model::SlotDecision{};
  last_substituted_ = r.boolean();
  for (std::size_t& count : level_counts_) count = r.size();
  events_.clear();
  const std::size_t num_events = r.count();
  events_.reserve(num_events);
  for (std::size_t i = 0; i < num_events; ++i) {
    DegradationEvent event;
    event.slot = r.size();
    const std::uint8_t level = r.u8();
    MDO_REQUIRE(level <= 2, "Robust snapshot: bad fallback level");
    event.level = static_cast<FallbackLevel>(level);
    const std::uint8_t kind = r.u8();
    MDO_REQUIRE(kind <=
                    static_cast<std::uint8_t>(DegradationKind::kOutageEviction),
                "Robust snapshot: bad degradation kind");
    event.kind = static_cast<DegradationKind>(kind);
    event.detail = r.str();
    events_.push_back(std::move(event));
  }
  slot_kinds_.clear();
  slot_details_.clear();
  inner_->restore_state(r);
}

}  // namespace mdo::online
