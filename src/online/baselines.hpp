// Baseline caching policies.
//
// LrfuController is the paper's comparison scheme (Sec. V-A): each slot
// every SBS caches the C_n contents with the highest current request
// volume (the paper grants LRFU accurate demand information). Load
// balancing is then chosen optimally for that cache via P2 — giving the
// baseline its best possible showing.
//
// LruController / LfuController / FifoController adapt the classic
// replacement rules (Sec. VI's related work) to the slot-level model: a
// deterministic, seeded stream of discrete requests is sampled from each
// slot's true demand and fed through a conventional cache. These extend the
// paper's evaluation with the rule-based policies its related-work section
// cites.
//
// StaticTopCController is a clairvoyant static baseline: it caches the
// top-C_n contents of the *average* demand over the whole horizon and never
// replaces — the natural "no replacement cost" anchor for the beta sweep.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/load_balancing.hpp"
#include "online/controller.hpp"

namespace mdo::online {

/// The paper's LRFU baseline.
class LrfuController final : public Controller {
 public:
  explicit LrfuController(core::LoadBalancingOptions options = {});

  std::string name() const override { return "LRFU"; }
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;

 private:
  core::LoadBalancingOptions options_;
  const model::ProblemInstance* instance_ = nullptr;
};

/// Shared scaffolding for the request-stream classics.
class RequestStreamController : public Controller {
 public:
  /// `requests_per_slot`: discrete requests sampled from the slot demand.
  RequestStreamController(std::size_t requests_per_slot, std::uint64_t seed,
                          core::LoadBalancingOptions options);

  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;

 protected:
  /// Called for each sampled request (SBS n, content k); implementations
  /// update their cache bookkeeping. `slot` is the current slot index.
  virtual void on_request(std::size_t n, std::size_t k, std::size_t slot) = 0;
  /// Current cache content of SBS n (size K bitmap).
  virtual const std::vector<std::uint8_t>& cache_of(std::size_t n) const = 0;
  /// Clears policy state for `num_sbs` SBSs with capacities `capacity`.
  virtual void clear(const model::NetworkConfig& config) = 0;

  const model::ProblemInstance* instance_ = nullptr;

 private:
  std::size_t requests_per_slot_;
  std::uint64_t seed_;
  core::LoadBalancingOptions options_;
};

/// Least Recently Used over the sampled request stream.
class LruController final : public RequestStreamController {
 public:
  explicit LruController(std::size_t requests_per_slot = 64,
                         std::uint64_t seed = 99,
                         core::LoadBalancingOptions options = {});
  std::string name() const override { return "LRU"; }

 protected:
  void on_request(std::size_t n, std::size_t k, std::size_t slot) override;
  const std::vector<std::uint8_t>& cache_of(std::size_t n) const override;
  void clear(const model::NetworkConfig& config) override;

 private:
  std::vector<std::vector<std::uint8_t>> cache_;
  std::vector<std::vector<std::size_t>> last_use_;  // per SBS per content
  std::vector<std::size_t> capacity_;
  std::size_t clock_ = 0;
};

/// Least Frequently Used (cumulative counts) over the request stream.
class LfuController final : public RequestStreamController {
 public:
  explicit LfuController(std::size_t requests_per_slot = 64,
                         std::uint64_t seed = 99,
                         core::LoadBalancingOptions options = {});
  std::string name() const override { return "LFU"; }

 protected:
  void on_request(std::size_t n, std::size_t k, std::size_t slot) override;
  const std::vector<std::uint8_t>& cache_of(std::size_t n) const override;
  void clear(const model::NetworkConfig& config) override;

 private:
  std::vector<std::vector<std::uint8_t>> cache_;
  std::vector<std::vector<std::uint64_t>> counts_;
  std::vector<std::size_t> capacity_;
};

/// First-In First-Out over the request stream.
class FifoController final : public RequestStreamController {
 public:
  explicit FifoController(std::size_t requests_per_slot = 64,
                          std::uint64_t seed = 99,
                          core::LoadBalancingOptions options = {});
  std::string name() const override { return "FIFO"; }

 protected:
  void on_request(std::size_t n, std::size_t k, std::size_t slot) override;
  const std::vector<std::uint8_t>& cache_of(std::size_t n) const override;
  void clear(const model::NetworkConfig& config) override;

 private:
  std::vector<std::vector<std::uint8_t>> cache_;
  std::vector<std::deque<std::size_t>> queue_;
  std::vector<std::size_t> capacity_;
};

/// Clairvoyant static top-C cache (never replaces after the first slot).
class StaticTopCController final : public Controller {
 public:
  explicit StaticTopCController(core::LoadBalancingOptions options = {});

  std::string name() const override { return "StaticTopC"; }
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;

 private:
  core::LoadBalancingOptions options_;
  const model::ProblemInstance* instance_ = nullptr;
  model::CacheState static_cache_;
};

}  // namespace mdo::online
