// Receding Horizon Control (Algorithm 2, Sec. IV-A).
//
// At each slot tau, RHC solves the window problem (26)-(31) over the
// prediction window [tau, tau + w) starting from its own cache trajectory
// x^{tau-1}, then commits only the first action. Theorem 2: because the
// caching polytope is integral (Theorem 1), the integer RHC inherits the
// continuous competitive ratio O(1 + 1/w).
//
// The window subproblem is solved with Algorithm 1. The solver's P2
// workspace bank persists across slots (rotated by advance_window(1)) so
// the load-balancing warm starts follow the sliding window; the
// multipliers themselves are re-initialized at the marginal BS gradient
// every slot — measured head-to-head, a shifted-mu hand-off between
// windows converges *slower* than the marginal re-init (the window's
// initial cache moves each slot and the tail slots carry end-of-window
// effects, so the dual optimum genuinely shifts; see DESIGN.md).
#pragma once

#include "core/primal_dual.hpp"
#include "online/controller.hpp"

namespace mdo::online {

class RhcController final : public Controller {
 public:
  /// `window` = w >= 1 slots of prediction (including the current slot).
  RhcController(std::size_t window, core::PrimalDualOptions options = {});

  std::string name() const override;
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;
  /// RHC plans from its own trajectory x^{tau-1}; when the executed action
  /// differs from the planned one (a RobustController fallback) the
  /// trajectory follows the executed cache.
  void observe(std::size_t slot, const model::SlotDecision& executed) override;

  /// Snapshot = trajectory cache + the solver's warm-start bank; restoring
  /// both makes the next decide() bit-identical to an uninterrupted run.
  bool supports_checkpoint() const override { return true; }
  void save_state(util::BinaryWriter& w) const override;
  void restore_state(util::BinaryReader& r) override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  core::PrimalDualOptions options_;
  /// Persistent across windows so the P2 workspace bank (and its warm
  /// starts) survives between decide() calls; advance_window(1) rotates it
  /// as the window slides. reset() recreates it.
  core::PrimalDualSolver solver_;
  const model::ProblemInstance* instance_ = nullptr;
  model::CacheState trajectory_cache_;  // x^{tau-1} along RHC's own path
  /// Per-decision window buffers the HorizonProblem references (one per
  /// representation; refilled in place each decide()).
  model::DemandTrace window_demand_;
  model::SparseDemandTrace window_sparse_;
};

/// Builds a warm-start multiplier vector for a new window of length
/// `new_horizon` from the multipliers of the previous window (length
/// `old_horizon`), advanced by `shift` slots. Shared by RHC and FHC.
linalg::Vec advance_mu(const linalg::Vec& old_mu,
                       const model::NetworkConfig& config,
                       std::size_t old_horizon, std::size_t new_horizon,
                       std::size_t shift);

}  // namespace mdo::online
