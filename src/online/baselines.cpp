#include "online/baselines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdo::online {

namespace {

/// Caches the top-C contents of each SBS by the given per-content score.
model::CacheState top_c_cache(const model::NetworkConfig& config,
                              const std::vector<linalg::Vec>& scores) {
  model::CacheState cache(config);
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    std::vector<std::size_t> order(config.num_contents);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scores[n][a] > scores[n][b];
                     });
    const std::size_t capacity =
        std::min(config.sbs[n].cache_capacity, order.size());
    for (std::size_t i = 0; i < capacity; ++i) cache.set(n, order[i], true);
  }
  return cache;
}

}  // namespace

// ---------------------------------------------------------------- LRFU ----

LrfuController::LrfuController(core::LoadBalancingOptions options)
    : options_(options) {}

void LrfuController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
}

model::SlotDecision LrfuController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "LRFU: reset() must be called first");
  MDO_REQUIRE(ctx.has_demand(), "LRFU uses the true demand");
  const auto& config = instance_->config;
  const model::SlotDemandView demand = ctx.demand();

  // Rank contents by current request volume (highest first), per SBS. One
  // O(M*K) column-sum pass per SBS instead of K O(M) content_total calls.
  std::vector<linalg::Vec> scores(config.num_sbs());
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    demand.sbs(n).content_totals_into(scores[n]);
  }
  model::SlotDecision decision;
  decision.cache = top_c_cache(config, scores);
  decision.load =
      core::optimal_load_for_cache(config, demand, decision.cache, options_);
  return decision;
}

// ------------------------------------------------- request-stream base ----

RequestStreamController::RequestStreamController(
    std::size_t requests_per_slot, std::uint64_t seed,
    core::LoadBalancingOptions options)
    : requests_per_slot_(requests_per_slot), seed_(seed), options_(options) {
  MDO_REQUIRE(requests_per_slot >= 1, "need at least one request per slot");
}

void RequestStreamController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  clear(instance.config);
}

model::SlotDecision RequestStreamController::decide(
    const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "reset() must be called first");
  MDO_REQUIRE(ctx.has_demand(),
              "request-stream baselines use the true demand");
  const auto& config = instance_->config;
  const model::SlotDemandView demand = ctx.demand();

  // Deterministic request stream for this slot: content drawn with
  // probability proportional to its total demand at the SBS.
  std::uint64_t mix = seed_;
  (void)splitmix64(mix);
  mix ^= 0x9e3779b97f4a7c15ULL * (ctx.slot + 1);
  Rng rng(splitmix64(mix));
  std::vector<double> weights;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    // Full K-vector (zeros included) so categorical() draws identically
    // whichever representation backs the view.
    demand.sbs(n).content_totals_into(weights);
    double total = 0.0;
    for (std::size_t k = 0; k < config.num_contents; ++k) total += weights[k];
    if (total <= 0.0) continue;  // idle slot: no requests, no updates
    for (std::size_t i = 0; i < requests_per_slot_; ++i) {
      on_request(n, rng.categorical(weights), ctx.slot);
    }
  }

  model::SlotDecision decision;
  decision.cache = model::CacheState(config);
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& bitmap = cache_of(n);
    for (std::size_t k = 0; k < config.num_contents; ++k) {
      decision.cache.set(n, k, bitmap[k] != 0);
    }
  }
  decision.load =
      core::optimal_load_for_cache(config, demand, decision.cache, options_);
  return decision;
}

// ----------------------------------------------------------------- LRU ----

LruController::LruController(std::size_t requests_per_slot,
                             std::uint64_t seed,
                             core::LoadBalancingOptions options)
    : RequestStreamController(requests_per_slot, seed, options) {}

void LruController::clear(const model::NetworkConfig& config) {
  cache_.assign(config.num_sbs(),
                std::vector<std::uint8_t>(config.num_contents, 0));
  last_use_.assign(config.num_sbs(),
                   std::vector<std::size_t>(config.num_contents, 0));
  capacity_.clear();
  for (const auto& s : config.sbs) capacity_.push_back(s.cache_capacity);
  clock_ = 0;
}

void LruController::on_request(std::size_t n, std::size_t k,
                               std::size_t /*slot*/) {
  ++clock_;
  last_use_[n][k] = clock_;
  if (cache_[n][k] != 0 || capacity_[n] == 0) return;
  // Admit k; evict the least recently used cached item when full.
  std::size_t cached = 0;
  for (const auto v : cache_[n]) cached += v;
  if (cached >= capacity_[n]) {
    std::size_t victim = 0;
    std::size_t oldest = std::numeric_limits<std::size_t>::max();
    for (std::size_t j = 0; j < cache_[n].size(); ++j) {
      if (cache_[n][j] != 0 && last_use_[n][j] < oldest) {
        oldest = last_use_[n][j];
        victim = j;
      }
    }
    cache_[n][victim] = 0;
  }
  cache_[n][k] = 1;
}

const std::vector<std::uint8_t>& LruController::cache_of(
    std::size_t n) const {
  return cache_[n];
}

// ----------------------------------------------------------------- LFU ----

LfuController::LfuController(std::size_t requests_per_slot,
                             std::uint64_t seed,
                             core::LoadBalancingOptions options)
    : RequestStreamController(requests_per_slot, seed, options) {}

void LfuController::clear(const model::NetworkConfig& config) {
  cache_.assign(config.num_sbs(),
                std::vector<std::uint8_t>(config.num_contents, 0));
  counts_.assign(config.num_sbs(),
                 std::vector<std::uint64_t>(config.num_contents, 0));
  capacity_.clear();
  for (const auto& s : config.sbs) capacity_.push_back(s.cache_capacity);
}

void LfuController::on_request(std::size_t n, std::size_t k,
                               std::size_t /*slot*/) {
  ++counts_[n][k];
  if (cache_[n][k] != 0 || capacity_[n] == 0) return;
  std::size_t cached = 0;
  for (const auto v : cache_[n]) cached += v;
  if (cached < capacity_[n]) {
    cache_[n][k] = 1;
    return;
  }
  // Evict the least frequently used cached item if k is now more frequent.
  std::size_t victim = cache_[n].size();
  std::uint64_t fewest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t j = 0; j < cache_[n].size(); ++j) {
    if (cache_[n][j] != 0 && counts_[n][j] < fewest) {
      fewest = counts_[n][j];
      victim = j;
    }
  }
  if (victim < cache_[n].size() && counts_[n][k] > fewest) {
    cache_[n][victim] = 0;
    cache_[n][k] = 1;
  }
}

const std::vector<std::uint8_t>& LfuController::cache_of(
    std::size_t n) const {
  return cache_[n];
}

// ---------------------------------------------------------------- FIFO ----

FifoController::FifoController(std::size_t requests_per_slot,
                               std::uint64_t seed,
                               core::LoadBalancingOptions options)
    : RequestStreamController(requests_per_slot, seed, options) {}

void FifoController::clear(const model::NetworkConfig& config) {
  cache_.assign(config.num_sbs(),
                std::vector<std::uint8_t>(config.num_contents, 0));
  queue_.assign(config.num_sbs(), {});
  capacity_.clear();
  for (const auto& s : config.sbs) capacity_.push_back(s.cache_capacity);
}

void FifoController::on_request(std::size_t n, std::size_t k,
                                std::size_t /*slot*/) {
  if (cache_[n][k] != 0 || capacity_[n] == 0) return;
  if (queue_[n].size() >= capacity_[n]) {
    cache_[n][queue_[n].front()] = 0;
    queue_[n].pop_front();
  }
  cache_[n][k] = 1;
  queue_[n].push_back(k);
}

const std::vector<std::uint8_t>& FifoController::cache_of(
    std::size_t n) const {
  return cache_[n];
}

// ---------------------------------------------------------- static topC ----

StaticTopCController::StaticTopCController(core::LoadBalancingOptions options)
    : options_(options) {}

void StaticTopCController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  const auto& config = instance.config;
  const model::DemandTraceView trace = instance.demand_view();
  std::vector<linalg::Vec> scores(config.num_sbs(),
                                  linalg::Vec(config.num_contents, 0.0));
  std::vector<double> totals;
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    for (std::size_t n = 0; n < config.num_sbs(); ++n) {
      trace.slot(t).sbs(n).content_totals_into(totals);
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        scores[n][k] += totals[k];
      }
    }
  }
  static_cache_ = top_c_cache(config, scores);
}

model::SlotDecision StaticTopCController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "reset() must be called first");
  MDO_REQUIRE(ctx.has_demand(), "StaticTopC uses the true demand");
  model::SlotDecision decision;
  decision.cache = static_cache_;
  decision.load = core::optimal_load_for_cache(
      instance_->config, ctx.demand(), decision.cache, options_);
  return decision;
}

}  // namespace mdo::online
