// Committed Horizon Control and Averaging Fixed Horizon Control
// (Algorithm 3, Sec. IV-B).
//
// CHC(r) runs r staggered Fixed Horizon Control (FHC) planners. Planner v
// re-plans at every slot tau ≡ v (mod r) over the prediction window
// [tau, tau + w), following its *own* committed trajectory; plan times may
// be negative (the paper intersects Psi_v with [-r+1, T] and sets Lambda = 0
// for t <= 0), in which case the pre-horizon slots carry zero demand.
//
// At each slot CHC averages the r planners' actions (eqs. (36)-(37)). The
// averaged caching variables can be fractional, so the integer version
// applies the rounding policy of Theorem 3 with threshold
// rho = (3 - sqrt(5))/2 (approximation ratio ~2.62). AFHC is the special
// case r = w.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/primal_dual.hpp"
#include "core/rounding.hpp"
#include "online/controller.hpp"

namespace mdo::online {

/// One staggered FHC planner (commitment level r, window w).
class FhcPlanner {
 public:
  /// `offset` = v in Psi_v; requires offset < commit <= window.
  FhcPlanner(std::size_t offset, std::size_t window, std::size_t commit,
             core::PrimalDualOptions options);

  void reset(const model::ProblemInstance& instance);

  /// The planner's action for slot t (plans lazily when t enters a new
  /// commitment block). `deadline`/`log` (both optional) supervise the
  /// plan's solve (see runtime/supervisor.hpp); with neither set the solve
  /// is exactly the unsupervised one.
  const model::SlotDecision& action(std::size_t t,
                                    const workload::Predictor& predictor,
                                    runtime::DeadlineToken* deadline = nullptr,
                                    runtime::SupervisionLog* log = nullptr);

  /// Executed-state resync (see Controller::resync): a wrapper substituted
  /// the decision actually executed at `slot`, so the variant's committed
  /// trajectory is void. The next action() replans from `executed` instead
  /// of the internal trajectory, dropping any cached plan.
  void resync(std::size_t slot, const model::CacheState& executed);

  /// Snapshot = plan bookkeeping (current plan, its time, the committed
  /// trajectory, a pending resync), the same-window warm multipliers, and
  /// the solver's warm-start bank (Checkpointable contract).
  void save_state(util::BinaryWriter& w) const;
  void restore_state(util::BinaryReader& r);

 private:
  void plan(std::ptrdiff_t tau, const workload::Predictor& predictor,
            runtime::DeadlineToken* deadline, runtime::SupervisionLog* log);

  std::size_t offset_;
  std::size_t window_;
  std::size_t commit_;
  core::PrimalDualOptions options_;
  /// Persistent across plans so the P2 workspace bank carries warm starts
  /// between commitment blocks (advanced by the actual plan-time delta, so
  /// a resync replan at the same tau keeps its warm starts unshifted).
  core::PrimalDualSolver solver_;
  const model::ProblemInstance* instance_ = nullptr;

  std::ptrdiff_t plan_time_ = 0;
  bool has_plan_ = false;
  model::Schedule plan_;                // indexed from plan_time_
  model::CacheState trajectory_cache_;  // the variant's own x^{tau-1}
  /// Executed cache substituted by a wrapper; consumed by the next plan().
  std::optional<model::CacheState> resync_cache_;
  linalg::Vec warm_mu_;
  std::size_t warm_horizon_ = 0;
  /// Per-plan window buffers the HorizonProblem references (one per
  /// representation; refilled in place each plan()).
  model::DemandTrace window_demand_;
  model::SparseDemandTrace window_sparse_;
};

class ChcController final : public Controller {
 public:
  /// `window` = w, `commit` = r in [1, w]; `rho` in (0, 1) is the rounding
  /// threshold (defaults to the paper's optimum).
  ChcController(std::size_t window, std::size_t commit,
                core::PrimalDualOptions options = {},
                double rho = core::chc_rounding_threshold());

  /// AFHC = CHC with r = w (Sec. IV-B notes AFHC is the extreme case).
  static std::unique_ptr<ChcController> afhc(
      std::size_t window, core::PrimalDualOptions options = {},
      double rho = core::chc_rounding_threshold());

  std::string name() const override;
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;
  /// Propagates the executed state to every staggered planner (fault-slot
  /// substitution; clean slots keep the paper's committed trajectories).
  void resync(std::size_t slot, const model::SlotDecision& executed) override;

  /// Snapshot = every staggered planner's state, in planner order.
  bool supports_checkpoint() const override { return true; }
  void save_state(util::BinaryWriter& w) const override;
  void restore_state(util::BinaryReader& r) override;

  std::size_t window() const { return window_; }
  std::size_t commit() const { return commit_; }
  double rho() const { return rho_; }

 private:
  std::size_t window_;
  std::size_t commit_;
  core::PrimalDualOptions options_;
  double rho_;
  bool is_afhc_ = false;
  const model::ProblemInstance* instance_ = nullptr;
  std::vector<FhcPlanner> planners_;
};

}  // namespace mdo::online
