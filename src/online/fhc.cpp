#include "online/fhc.hpp"

#include "util/error.hpp"

namespace mdo::online {

FhcController::FhcController(std::size_t window, std::size_t commit,
                             std::size_t offset,
                             core::PrimalDualOptions options)
    : window_(window),
      commit_(commit),
      offset_(offset),
      planner_(offset, window, commit, options) {}

std::string FhcController::name() const {
  return "FHC(w=" + std::to_string(window_) + ",r=" + std::to_string(commit_) +
         ",v=" + std::to_string(offset_) + ")";
}

void FhcController::reset(const model::ProblemInstance& instance) {
  planner_.reset(instance);
}

model::SlotDecision FhcController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(ctx.predictor != nullptr, "FHC needs a predictor");
  return planner_.action(ctx.slot, *ctx.predictor, ctx.deadline,
                         ctx.supervision);
}

void FhcController::resync(std::size_t slot,
                           const model::SlotDecision& executed) {
  planner_.resync(slot, executed.cache);
}

}  // namespace mdo::online
