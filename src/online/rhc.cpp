#include "online/rhc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mdo::online {

linalg::Vec advance_mu(const linalg::Vec& old_mu,
                       const model::NetworkConfig& config,
                       std::size_t old_horizon, std::size_t new_horizon,
                       std::size_t shift) {
  const std::size_t per_slot = core::mu_size(config, 1);
  MDO_REQUIRE(old_mu.size() == per_slot * old_horizon,
              "advance_mu: old size mismatch");
  MDO_REQUIRE(old_horizon >= 1 && new_horizon >= 1, "advance_mu: horizons");
  linalg::Vec out(per_slot * new_horizon);
  for (std::size_t t = 0; t < new_horizon; ++t) {
    const std::size_t src = std::min(t + shift, old_horizon - 1);
    std::copy_n(
        old_mu.begin() + static_cast<std::ptrdiff_t>(src * per_slot), per_slot,
        out.begin() + static_cast<std::ptrdiff_t>(t * per_slot));
  }
  return out;
}

RhcController::RhcController(std::size_t window,
                             core::PrimalDualOptions options)
    : window_(window), options_(options) {
  MDO_REQUIRE(window >= 1, "RHC window must be >= 1");
}

std::string RhcController::name() const {
  return "RHC(w=" + std::to_string(window_) + ")";
}

void RhcController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  trajectory_cache_ = instance.initial_cache;
  warm_mu_.clear();
  warm_horizon_ = 0;
}

model::SlotDecision RhcController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "RHC: reset() must be called first");
  MDO_REQUIRE(ctx.predictor != nullptr, "RHC needs a predictor");

  core::HorizonProblem problem;
  problem.config = &instance_->config;
  problem.demand = ctx.predictor->predict_window(ctx.slot, window_);
  problem.initial_cache = trajectory_cache_;
  const std::size_t horizon = problem.demand.horizon();
  MDO_REQUIRE(horizon >= 1, "RHC: slot beyond the instance horizon");

  std::optional<linalg::Vec> warm;
  if (!warm_mu_.empty()) {
    warm = advance_mu(warm_mu_, instance_->config, warm_horizon_, horizon,
                      /*shift=*/1);
  }
  const auto solution = core::PrimalDualSolver(options_).solve(
      problem, warm ? &*warm : nullptr);

  warm_mu_ = solution.mu;
  warm_horizon_ = horizon;
  trajectory_cache_ = solution.schedule.front().cache;
  return solution.schedule.front();
}

void RhcController::observe(std::size_t /*slot*/,
                            const model::SlotDecision& executed) {
  if (instance_ == nullptr) return;
  trajectory_cache_ = executed.cache;
}

}  // namespace mdo::online
