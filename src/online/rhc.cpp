#include "online/rhc.hpp"

#include "runtime/checkpoint.hpp"
#include "runtime/supervisor.hpp"
#include "util/error.hpp"

namespace mdo::online {

linalg::Vec advance_mu(const linalg::Vec& old_mu,
                       const model::NetworkConfig& config,
                       std::size_t old_horizon, std::size_t new_horizon,
                       std::size_t shift) {
  return core::shift_mu(old_mu, config, old_horizon, new_horizon, shift);
}

RhcController::RhcController(std::size_t window,
                             core::PrimalDualOptions options)
    : window_(window), options_(options), solver_(options_) {
  MDO_REQUIRE(window >= 1, "RHC window must be >= 1");
}

std::string RhcController::name() const {
  return "RHC(w=" + std::to_string(window_) + ")";
}

void RhcController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  trajectory_cache_ = instance.initial_cache;
  // Drop the workspace bank: warm starts from another run must not leak.
  solver_ = core::PrimalDualSolver(options_);
}

model::SlotDecision RhcController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "RHC: reset() must be called first");
  MDO_REQUIRE(ctx.predictor != nullptr, "RHC needs a predictor");

  // The window problem references the controller's per-representation
  // buffer: one trace reused across decisions, refilled in place — no
  // per-decision window copy.
  core::HorizonProblem problem;
  problem.config = &instance_->config;
  if (instance_->use_sparse_demand) {
    ctx.predictor->predict_window_sparse_into(ctx.slot, window_,
                                              window_sparse_);
    problem.sparse_demand = &window_sparse_;
  } else {
    ctx.predictor->predict_window_into(ctx.slot, window_, window_demand_);
    problem.demand = &window_demand_;
  }
  problem.initial_cache = trajectory_cache_;
  const std::size_t horizon = problem.horizon();
  MDO_REQUIRE(horizon >= 1, "RHC: slot beyond the instance horizon");

  // The window slid by one slot: rotate the P2 warm starts along with it.
  // The multipliers are deliberately NOT carried over — the dual optimum
  // moves with the initial cache and the window tail, and a shifted mu
  // start was measured to converge slower than the marginal
  // re-initialization (see the header comment).
  solver_.advance_window(/*shift=*/1);
  // With no deadline and no supervision log this is exactly solver_.solve()
  // — the clean path stays bit-identical to the unsupervised controller.
  // RHC commits only the first action, so a truncated backoff retry may
  // shrink the window down to a single slot.
  const auto solution = runtime::supervised_solve(
      solver_, problem, /*warm_mu=*/nullptr, ctx.deadline, {},
      ctx.supervision, ctx.slot, /*min_horizon=*/1);

  trajectory_cache_ = solution.schedule.front().cache;
  return solution.schedule.front();
}

void RhcController::save_state(util::BinaryWriter& w) const {
  MDO_REQUIRE(instance_ != nullptr, "RHC: reset() must be called first");
  runtime::write_cache(w, trajectory_cache_);
  solver_.save_state(w);
}

void RhcController::restore_state(util::BinaryReader& r) {
  MDO_REQUIRE(instance_ != nullptr, "RHC: reset() must be called first");
  trajectory_cache_ = runtime::read_cache(r, instance_->config);
  solver_.restore_state(r);
}

void RhcController::observe(std::size_t /*slot*/,
                            const model::SlotDecision& executed) {
  if (instance_ == nullptr) return;
  trajectory_cache_ = executed.cache;
}

}  // namespace mdo::online
