// The controller abstraction the simulation engine drives.
//
// Each slot the simulator hands a controller the current time, the *true*
// demand of the current slot (which only the baselines that the paper
// declares clairvoyant — offline, LRFU, the classic policies — may use) and
// the predictor (which the online algorithms use for their w-slot
// forecasts). The controller returns the joint decision for the slot; the
// simulator then repairs residual bandwidth infeasibility against the true
// demand and accounts the true cost.
#pragma once

#include <string>

#include "model/decision.hpp"
#include "model/instance.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"
#include "workload/predictor.hpp"

namespace mdo::runtime {
class DeadlineToken;
struct SupervisionLog;
}  // namespace mdo::runtime

namespace mdo::online {

/// Per-slot inputs.
///
/// Under fault injection (see sim/fault_injector.hpp) the simulator hands
/// controllers the *observed* world, which can differ from the clean one:
/// `true_demand` may carry corrupted (NaN/negative) or spiked rates,
/// `predictor` is null during a predictor blackout, and `effective_config`
/// describes the cell with outaged SBSs (capacity and bandwidth forced to
/// zero). Plain controllers may ignore `effective_config`; RobustController
/// enforces it.
struct DecisionContext {
  std::size_t slot = 0;                               // tau
  const model::SlotDemand* true_demand = nullptr;     // observed demand at tau
  /// Sparse twin of true_demand; exactly one of the two is set when demand
  /// is observable (the simulator passes whichever representation the
  /// instance carries). Controllers read it through demand().
  const model::SparseSlotDemand* true_demand_sparse = nullptr;
  const workload::Predictor* predictor = nullptr;     // forecasts from tau
  /// Per-slot degraded network view; nullptr means the instance config.
  const model::NetworkConfig* effective_config = nullptr;
  /// Optional per-decision budget (runtime/deadline.hpp). Solver-backed
  /// controllers thread it into Algorithm 1, which returns its best
  /// feasible incumbent with SolveStatus::kDeadlineExpired on expiry
  /// (anytime semantics). Null = unlimited; the decision path is then
  /// bitwise-identical to the pre-deadline behavior.
  runtime::DeadlineToken* deadline = nullptr;
  /// Optional sink for supervision events (runtime/supervisor.hpp):
  /// deadline expirations, solve failures, backoff retries. Null disables
  /// supervised retries — plain solves only.
  runtime::SupervisionLog* supervision = nullptr;

  bool has_demand() const {
    return true_demand != nullptr || true_demand_sparse != nullptr;
  }
  /// View over whichever demand representation is present. Call only when
  /// has_demand() (an empty view throws on access).
  model::SlotDemandView demand() const {
    if (true_demand_sparse != nullptr) {
      return model::SlotDemandView(*true_demand_sparse);
    }
    if (true_demand != nullptr) return model::SlotDemandView(*true_demand);
    return model::SlotDemandView();
  }
};

class Controller {
 public:
  virtual ~Controller() = default;

  /// Display name ("RHC", "CHC(r=5)", ...).
  virtual std::string name() const = 0;

  /// Called once before a simulation run; controllers capture the instance
  /// (which must outlive the run) and clear internal state.
  virtual void reset(const model::ProblemInstance& instance) = 0;

  /// Decision for slot ctx.slot. Must respect cache capacity (1); the
  /// simulator enforces (2)-(3) against the true demand afterwards.
  virtual model::SlotDecision decide(const DecisionContext& ctx) = 0;

  /// Called by the simulator after the slot's decision has been repaired and
  /// executed. Controllers that always plan from the executed state (RHC)
  /// resynchronize here. Default: no-op. CHC/FHC planners keep their own
  /// committed trajectories on clean slots (the paper's averaging design);
  /// they resync only through resync() below.
  virtual void observe(std::size_t slot, const model::SlotDecision& executed) {
    (void)slot;
    (void)executed;
  }

  /// Called instead of observe() when the executed decision did NOT come
  /// from this controller's decide() — a wrapper (RobustController)
  /// substituted a fallback action or projected the caches onto a degraded
  /// config. Trajectory-tracking controllers must abandon internal state
  /// derived from the phantom trajectory and replan from `executed`,
  /// otherwise the replacement cost h(X_t, X_{t-1}) of their next actions is
  /// charged against a cache state that never existed. The default forwards
  /// to observe(), which is already an unconditional resync for RHC.
  virtual void resync(std::size_t slot, const model::SlotDecision& executed) {
    observe(slot, executed);
  }

  /// Checkpoint support (see runtime/checkpoint.hpp). A controller that
  /// returns true here implements save_state()/restore_state() with the
  /// Checkpointable contract: restoring a snapshot into a freshly reset()
  /// controller makes every subsequent decide() bit-identical to the
  /// original's. The checkpointing simulator rejects unsupported
  /// controllers upfront rather than writing snapshots that cannot resume.
  virtual bool supports_checkpoint() const { return false; }
  virtual void save_state(util::BinaryWriter& w) const {
    (void)w;
    throw LogicError(name() + ": checkpointing not supported");
  }
  virtual void restore_state(util::BinaryReader& r) {
    (void)r;
    throw LogicError(name() + ": checkpointing not supported");
  }
};

}  // namespace mdo::online
