// The controller abstraction the simulation engine drives.
//
// Each slot the simulator hands a controller the current time, the *true*
// demand of the current slot (which only the baselines that the paper
// declares clairvoyant — offline, LRFU, the classic policies — may use) and
// the predictor (which the online algorithms use for their w-slot
// forecasts). The controller returns the joint decision for the slot; the
// simulator then repairs residual bandwidth infeasibility against the true
// demand and accounts the true cost.
#pragma once

#include <string>

#include "model/decision.hpp"
#include "model/instance.hpp"
#include "workload/predictor.hpp"

namespace mdo::online {

/// Per-slot inputs.
struct DecisionContext {
  std::size_t slot = 0;                               // tau
  const model::SlotDemand* true_demand = nullptr;     // truth at tau
  const workload::Predictor* predictor = nullptr;     // forecasts from tau
};

class Controller {
 public:
  virtual ~Controller() = default;

  /// Display name ("RHC", "CHC(r=5)", ...).
  virtual std::string name() const = 0;

  /// Called once before a simulation run; controllers capture the instance
  /// (which must outlive the run) and clear internal state.
  virtual void reset(const model::ProblemInstance& instance) = 0;

  /// Decision for slot ctx.slot. Must respect cache capacity (1); the
  /// simulator enforces (2)-(3) against the true demand afterwards.
  virtual model::SlotDecision decide(const DecisionContext& ctx) = 0;
};

}  // namespace mdo::online
