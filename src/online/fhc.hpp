// Fixed Horizon Control as a standalone controller.
//
// FHC(v) is the building block of AFHC and CHC (Sec. IV-B): it re-plans
// every r slots over a w-slot window and commits the whole block. Exposed
// as its own Controller so the un-averaged policy can be benchmarked
// directly — it shows why the averaging in AFHC/CHC helps: a single FHC
// variant suffers at its commitment boundaries when forecasts are noisy.
#pragma once

#include "online/chc.hpp"

namespace mdo::online {

class FhcController final : public Controller {
 public:
  /// Plans at slots ≡ offset (mod commit); offset < commit <= window.
  FhcController(std::size_t window, std::size_t commit,
                std::size_t offset = 0, core::PrimalDualOptions options = {});

  std::string name() const override;
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;
  /// Hands the substituted executed state to the planner (see
  /// FhcPlanner::resync); clean slots keep the committed trajectory.
  void resync(std::size_t slot, const model::SlotDecision& executed) override;

  /// Snapshot = the single planner's state (see FhcPlanner::save_state).
  bool supports_checkpoint() const override { return true; }
  void save_state(util::BinaryWriter& w) const override {
    planner_.save_state(w);
  }
  void restore_state(util::BinaryReader& r) override {
    planner_.restore_state(r);
  }

 private:
  std::size_t window_;
  std::size_t commit_;
  std::size_t offset_;
  FhcPlanner planner_;
};

}  // namespace mdo::online
