// Graceful-degradation wrapper around any Controller.
//
// Production operation (see DESIGN.md, "Failure model and graceful
// degradation") cannot afford a per-slot abort: predictors drop out, SBSs
// fail, traces arrive corrupted, and a slot's solve must finish inside a
// deadline. RobustController makes `decide()` total: it never throws and
// always returns a finite, cache-capacity-feasible decision, degrading
// through a fixed fallback chain when the wrapped controller cannot deliver:
//
//   level 0 (kFull)      the wrapped controller's own solve, validated and —
//                        under an SBS outage — projected onto the degraded
//                        capacities;
//   level 1 (kWarmReuse) reuse the previously *executed* decision,
//                        re-projected feasible for the current slot;
//   level 2 (kBsOnly)    LRFU-style top-C caching on the sanitized observed
//                        demand with y = 0 (all traffic through the BS) —
//                        feasible for every instance.
//
// Every degradation is recorded as a typed DegradationEvent, consumed by the
// robustness report (sim/robustness_report.hpp). On a clean slot the wrapper
// is transparent: it returns the wrapped controller's decision bit for bit.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "online/controller.hpp"

namespace mdo::online {

/// Which rung of the fallback chain served a slot.
enum class FallbackLevel { kFull = 0, kWarmReuse = 1, kBsOnly = 2 };

enum class DegradationKind {
  kCorruptDemand,      // observed demand held NaN/Inf/negative rates
  kPredictorMissing,   // predictor blackout and the controller needs one
  kSolverFailure,      // the wrapped decide() threw
  kNonFiniteDecision,  // the wrapped decide() returned NaN/Inf allocations
  kDeadlineExceeded,   // the wrapped decide() overran the per-slot budget
  kOutageEviction,     // cache projected onto degraded (outage) capacities
};

constexpr const char* to_string(FallbackLevel level) {
  switch (level) {
    case FallbackLevel::kFull: return "full";
    case FallbackLevel::kWarmReuse: return "warm_reuse";
    case FallbackLevel::kBsOnly: return "bs_only";
  }
  return "?";
}

constexpr const char* to_string(DegradationKind kind) {
  switch (kind) {
    case DegradationKind::kCorruptDemand: return "corrupt_demand";
    case DegradationKind::kPredictorMissing: return "predictor_missing";
    case DegradationKind::kSolverFailure: return "solver_failure";
    case DegradationKind::kNonFiniteDecision: return "non_finite_decision";
    case DegradationKind::kDeadlineExceeded: return "deadline_exceeded";
    case DegradationKind::kOutageEviction: return "outage_eviction";
  }
  return "?";
}

/// One recorded degradation. `level` is the rung that ultimately served the
/// slot (several events can share a slot: e.g. a solver failure followed by
/// an outage eviction of the reused schedule).
struct DegradationEvent {
  std::size_t slot = 0;
  FallbackLevel level = FallbackLevel::kFull;
  DegradationKind kind = DegradationKind::kSolverFailure;
  std::string detail;
};

struct RobustControllerOptions {
  /// Per-slot wall-clock budget for the wrapped decide(); 0 disables it
  /// (the default — wall-clock fallbacks are not deterministic). When no
  /// caller token is present the wrapper builds a wall-clock DeadlineToken
  /// from this budget and hands it to the wrapped controller. A deadline-
  /// aware inner then returns its best feasible anytime incumbent, which is
  /// *served* (with a kDeadlineExceeded event) rather than discarded; only
  /// an inner that ignored the token and overran the budget is discarded
  /// and the slot served from level 1.
  double max_decide_seconds = 0.0;
  /// Logical per-slot budget: the wrapped solve may spend this many dual
  /// iterations (DeadlineToken::after_checks). 0 disables it. Deterministic
  /// and thread-invariant — preferred over the wall clock for reproducible
  /// degradation experiments; when both are set, checks win.
  std::size_t max_decide_checks = 0;
};

class RobustController final : public Controller {
 public:
  /// Wraps `inner` (not owned; must outlive the wrapper).
  explicit RobustController(Controller& inner,
                            RobustControllerOptions options = {});

  std::string name() const override;
  void reset(const model::ProblemInstance& instance) override;
  /// Never throws; always returns finite allocations and a cache respecting
  /// the (possibly outage-degraded) capacity of every SBS.
  model::SlotDecision decide(const DecisionContext& ctx) override;
  /// Forwards to the wrapped controller — as observe() on clean slots, as
  /// resync() when the last decide() substituted or projected the decision
  /// (fallback levels 1-2, or a level-0 cache eviction). Without that the
  /// wrapped controller keeps planning from a trajectory that was never
  /// executed (phantom-state divergence).
  void observe(std::size_t slot, const model::SlotDecision& executed) override;
  void resync(std::size_t slot, const model::SlotDecision& executed) override;

  /// All degradations since the last reset(), in slot order.
  const std::vector<DegradationEvent>& events() const { return events_; }
  /// Number of decide() calls served by each fallback level since reset().
  const std::array<std::size_t, 3>& level_counts() const {
    return level_counts_;
  }

  /// Snapshot = warm-reuse state + degradation history + the wrapped
  /// controller's own snapshot; supported iff the wrapped controller
  /// supports checkpointing.
  bool supports_checkpoint() const override {
    return inner_->supports_checkpoint();
  }
  void save_state(util::BinaryWriter& w) const override;
  void restore_state(util::BinaryReader& r) override;

 private:
  model::SlotDecision decide_guarded(const DecisionContext& ctx);
  model::SlotDecision finish(std::size_t slot, FallbackLevel level,
                             model::SlotDecision decision, bool substituted);

  Controller* inner_;
  RobustControllerOptions options_;
  const model::ProblemInstance* instance_ = nullptr;

  model::SlotDecision last_executed_;  // warm-reuse source
  bool have_last_ = false;
  /// The last served decision was not the wrapped controller's own (fallback
  /// substitution or cache projection) — the next observe() must resync.
  bool last_substituted_ = false;
  std::vector<DegradationEvent> events_;
  std::vector<DegradationKind> slot_kinds_;   // kinds raised this slot
  std::vector<std::string> slot_details_;     // parallel to slot_kinds_
  std::array<std::size_t, 3> level_counts_{};
};

}  // namespace mdo::online
