#include "online/chc.hpp"

#include <algorithm>
#include <utility>

#include "runtime/checkpoint.hpp"
#include "runtime/supervisor.hpp"
#include "util/error.hpp"

namespace mdo::online {

FhcPlanner::FhcPlanner(std::size_t offset, std::size_t window,
                       std::size_t commit, core::PrimalDualOptions options)
    : offset_(offset),
      window_(window),
      commit_(commit),
      options_(options),
      solver_(options_) {
  MDO_REQUIRE(window >= 1, "FHC window must be >= 1");
  MDO_REQUIRE(commit >= 1 && commit <= window,
              "FHC commitment must be in [1, window]");
  MDO_REQUIRE(offset < commit, "FHC offset must be < commitment level");
}

void FhcPlanner::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  trajectory_cache_ = instance.initial_cache;
  has_plan_ = false;
  plan_.clear();
  resync_cache_.reset();
  warm_mu_.clear();
  warm_horizon_ = 0;
  // Drop the workspace bank: warm starts from another run must not leak.
  solver_ = core::PrimalDualSolver(options_);
}

void FhcPlanner::resync(std::size_t slot, const model::CacheState& executed) {
  (void)slot;  // the cached plan is void regardless of where it diverged
  resync_cache_ = executed;
}

void FhcPlanner::plan(std::ptrdiff_t tau,
                      const workload::Predictor& predictor,
                      runtime::DeadlineToken* deadline,
                      runtime::SupervisionLog* log) {
  const auto& config = instance_->config;
  const std::size_t total_horizon = predictor.horizon();

  // Starting state: this variant's own action at tau - 1, or the instance's
  // initial cache when the previous slot predates its first plan. After a
  // wrapper substituted the executed decision (resync), the committed
  // trajectory never happened: plan from the executed cache instead.
  model::CacheState start = trajectory_cache_;
  if (resync_cache_) {
    start = *resync_cache_;
    resync_cache_.reset();
  } else if (has_plan_) {
    const std::ptrdiff_t prev_slot = tau - 1;
    const std::ptrdiff_t index = prev_slot - plan_time_;
    if (index >= 0 && index < static_cast<std::ptrdiff_t>(plan_.size())) {
      start = plan_[static_cast<std::size_t>(index)].cache;
    }
  }

  // Window demand: zero demand for pre-horizon slots (Lambda^t = 0 for
  // t <= 0), forecasts for the rest, clipped at the instance horizon.
  // A pre-horizon plan (tau < 0) predates every observation: querying the
  // predictor with the clamped slot-0 time would smuggle in information not
  // yet available at plan time, so those windows are zero/prior-only.
  // The problem references the planner's per-representation window buffer,
  // refilled in place each plan — no per-plan window copy.
  const bool sparse = instance_->use_sparse_demand;
  core::HorizonProblem problem;
  problem.config = &config;
  if (sparse) {
    window_sparse_.clear();
    problem.sparse_demand = &window_sparse_;
  } else {
    window_demand_.clear();
    problem.demand = &window_demand_;
  }
  for (std::size_t i = 0; i < window_; ++i) {
    const std::ptrdiff_t abs_slot = tau + static_cast<std::ptrdiff_t>(i);
    if (abs_slot >= static_cast<std::ptrdiff_t>(total_horizon)) break;
    if (abs_slot < 0 || tau < 0) {
      if (sparse) {
        window_sparse_.push_back(model::make_zero_sparse_slot_demand(config));
      } else {
        window_demand_.push_back(model::make_zero_slot_demand(config));
      }
    } else if (sparse) {
      window_sparse_.push_back(
          predictor.predict_sparse(static_cast<std::size_t>(tau),
                                   static_cast<std::size_t>(abs_slot)));
    } else {
      window_demand_.push_back(
          predictor.predict(static_cast<std::size_t>(tau),
                            static_cast<std::size_t>(abs_slot)));
    }
  }
  MDO_CHECK(problem.horizon() >= 1, "FHC: empty planning window");
  problem.initial_cache = start;

  const std::size_t horizon = problem.horizon();
  // The actual plan-time delta: commit_ on the regular re-plan cadence, but
  // 0 when a resync forces a replan within the same commitment block (the
  // window has not moved, so neither should the warm starts).
  const std::size_t shift =
      has_plan_ && tau >= plan_time_
          ? static_cast<std::size_t>(tau - plan_time_)
          : commit_;
  solver_.advance_window(shift);
  // Multipliers are reused ONLY for a same-window replan (a resync at the
  // same tau over the same horizon): there they describe the identical
  // dual, and the solver continues the diminishing-step schedule where it
  // stopped. For a slid window a shifted-mu start was measured to converge
  // slower than the marginal re-initialization (the dual optimum moves
  // with the initial cache and the window tail; see DESIGN.md), so those
  // plans solve from the marginal init.
  const bool same_window =
      shift == 0 && !warm_mu_.empty() && warm_horizon_ == horizon;
  const linalg::Vec* warm =
      same_window && options_.cross_window_warm_start ? &warm_mu_ : nullptr;
  // The plan must cover this commitment block: a truncated backoff retry
  // may drop tail slots, but never below the block the planner commits.
  const std::size_t min_horizon = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(
          1, std::min<std::ptrdiff_t>(
                 static_cast<std::ptrdiff_t>(commit_),
                 static_cast<std::ptrdiff_t>(total_horizon) - tau)));
  // With no deadline and no log this is exactly solver_.solve(problem,
  // warm) — the clean path stays bit-identical to the unsupervised planner.
  auto solution = runtime::supervised_solve(solver_, problem, warm,
                                            deadline, {}, log,
                                            static_cast<std::size_t>(
                                                std::max<std::ptrdiff_t>(tau,
                                                                         0)),
                                            min_horizon);

  warm_mu_ = std::move(solution.mu);
  // A truncated recovery returns a shorter schedule; the warm bookkeeping
  // must describe the horizon the multipliers were actually solved for.
  warm_horizon_ = solution.schedule.size();
  plan_ = std::move(solution.schedule);
  plan_time_ = tau;
  has_plan_ = true;
  trajectory_cache_ = start;
}

const model::SlotDecision& FhcPlanner::action(
    std::size_t t, const workload::Predictor& predictor,
    runtime::DeadlineToken* deadline, runtime::SupervisionLog* log) {
  MDO_REQUIRE(instance_ != nullptr, "FHC: reset() must be called first");
  // Most recent plan time tau <= t with tau ≡ offset (mod commit).
  const auto signed_t = static_cast<std::ptrdiff_t>(t);
  const auto r = static_cast<std::ptrdiff_t>(commit_);
  std::ptrdiff_t diff = (signed_t - static_cast<std::ptrdiff_t>(offset_)) % r;
  if (diff < 0) diff += r;
  const std::ptrdiff_t tau = signed_t - diff;

  if (!has_plan_ || plan_time_ != tau || resync_cache_.has_value()) {
    plan(tau, predictor, deadline, log);
  }
  const std::ptrdiff_t index = signed_t - plan_time_;
  MDO_CHECK(index >= 0 && index < static_cast<std::ptrdiff_t>(plan_.size()),
            "FHC: slot outside the current plan");
  return plan_[static_cast<std::size_t>(index)];
}

void FhcPlanner::save_state(util::BinaryWriter& w) const {
  MDO_REQUIRE(instance_ != nullptr, "FHC: reset() must be called first");
  w.i64(static_cast<std::int64_t>(plan_time_));
  w.boolean(has_plan_);
  runtime::write_schedule(w, plan_);
  runtime::write_cache(w, trajectory_cache_);
  w.boolean(resync_cache_.has_value());
  if (resync_cache_.has_value()) runtime::write_cache(w, *resync_cache_);
  w.f64_vec(warm_mu_);
  w.size(warm_horizon_);
  solver_.save_state(w);
}

void FhcPlanner::restore_state(util::BinaryReader& r) {
  MDO_REQUIRE(instance_ != nullptr, "FHC: reset() must be called first");
  const auto& config = instance_->config;
  plan_time_ = static_cast<std::ptrdiff_t>(r.i64());
  has_plan_ = r.boolean();
  plan_ = runtime::read_schedule(r, config);
  trajectory_cache_ = runtime::read_cache(r, config);
  resync_cache_.reset();
  if (r.boolean()) resync_cache_ = runtime::read_cache(r, config);
  warm_mu_ = r.f64_vec_as<linalg::Vec>();
  warm_horizon_ = r.size();
  solver_.restore_state(r);
}

ChcController::ChcController(std::size_t window, std::size_t commit,
                             core::PrimalDualOptions options, double rho)
    : window_(window), commit_(commit), options_(options), rho_(rho) {
  MDO_REQUIRE(window >= 1, "CHC window must be >= 1");
  MDO_REQUIRE(commit >= 1 && commit <= window,
              "CHC commitment level must be in [1, window]");
  MDO_REQUIRE(rho > 0.0 && rho < 1.0, "CHC rho must be in (0, 1)");
  planners_.reserve(commit_);
  for (std::size_t v = 0; v < commit_; ++v) {
    planners_.emplace_back(v, window_, commit_, options_);
  }
}

std::unique_ptr<ChcController> ChcController::afhc(
    std::size_t window, core::PrimalDualOptions options, double rho) {
  auto controller =
      std::make_unique<ChcController>(window, window, options, rho);
  controller->is_afhc_ = true;
  return controller;
}

std::string ChcController::name() const {
  if (is_afhc_) return "AFHC(w=" + std::to_string(window_) + ")";
  return "CHC(w=" + std::to_string(window_) +
         ",r=" + std::to_string(commit_) + ")";
}

void ChcController::reset(const model::ProblemInstance& instance) {
  instance_ = &instance;
  for (auto& planner : planners_) planner.reset(instance);
}

void ChcController::resync(std::size_t slot,
                           const model::SlotDecision& executed) {
  for (auto& planner : planners_) planner.resync(slot, executed.cache);
}

model::SlotDecision ChcController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(instance_ != nullptr, "CHC: reset() must be called first");
  MDO_REQUIRE(ctx.predictor != nullptr, "CHC needs a predictor");
  const auto& config = instance_->config;

  // Average the r variants' actions (36)-(37).
  std::vector<linalg::Vec> fractional_x(config.num_sbs(),
                                        linalg::Vec(config.num_contents, 0.0));
  model::LoadAllocation averaged_y(config);
  const double inv_r = 1.0 / static_cast<double>(commit_);
  for (auto& planner : planners_) {
    const model::SlotDecision& action =
        planner.action(ctx.slot, *ctx.predictor, ctx.deadline,
                       ctx.supervision);
    for (std::size_t n = 0; n < config.num_sbs(); ++n) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        if (action.cache.cached(n, k)) fractional_x[n][k] += inv_r;
      }
      auto& acc = averaged_y.sbs_data(n);
      const auto& part = action.load.sbs_data(n);
      for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += inv_r * part[j];
    }
  }

  // Rounding policy (Theorem 3): threshold x at rho, zero masked y.
  model::SlotDecision decision;
  decision.cache = core::round_cache(config, fractional_x, rho_);
  decision.load = std::move(averaged_y);
  core::mask_load_by_cache(config, decision.cache, decision.load);
  return decision;
}

void ChcController::save_state(util::BinaryWriter& w) const {
  MDO_REQUIRE(instance_ != nullptr, "CHC: reset() must be called first");
  w.size(planners_.size());
  for (const auto& planner : planners_) planner.save_state(w);
}

void ChcController::restore_state(util::BinaryReader& r) {
  MDO_REQUIRE(instance_ != nullptr, "CHC: reset() must be called first");
  MDO_REQUIRE(r.size() == planners_.size(),
              "CHC snapshot: planner count mismatch");
  for (auto& planner : planners_) planner.restore_state(r);
}

}  // namespace mdo::online
