#include "online/offline_controller.hpp"

#include "util/error.hpp"

namespace mdo::online {

OfflineController::OfflineController(core::PrimalDualOptions options)
    : options_(options) {}

void OfflineController::reset(const model::ProblemInstance& instance) {
  core::HorizonProblem problem;
  problem.config = &instance.config;
  if (instance.use_sparse_demand) {
    problem.sparse_demand = &instance.sparse_demand;
  } else {
    problem.demand = &instance.demand;
  }
  problem.initial_cache = instance.initial_cache;
  solution_ = core::PrimalDualSolver(options_).solve(problem);
}

model::SlotDecision OfflineController::decide(const DecisionContext& ctx) {
  MDO_REQUIRE(ctx.slot < solution_.schedule.size(),
              "offline controller: slot beyond solved horizon");
  return solution_.schedule[ctx.slot];
}

}  // namespace mdo::online
