// The clairvoyant offline optimum (Sec. V-A, "Offline optimal solution").
//
// Runs Algorithm 1 over the entire horizon with the true demand at reset(),
// then replays the resulting schedule slot by slot. Serves as the
// (practically unrealizable) lower-bound baseline of every figure.
#pragma once

#include "core/primal_dual.hpp"
#include "online/controller.hpp"

namespace mdo::online {

class OfflineController final : public Controller {
 public:
  explicit OfflineController(core::PrimalDualOptions options = {});

  std::string name() const override { return "Offline"; }
  void reset(const model::ProblemInstance& instance) override;
  model::SlotDecision decide(const DecisionContext& ctx) override;

  /// The bounds certified by the full-horizon primal-dual solve.
  double upper_bound() const { return solution_.upper_bound; }
  double lower_bound() const { return solution_.lower_bound; }

 private:
  core::PrimalDualOptions options_;
  core::HorizonSolution solution_;
};

}  // namespace mdo::online
