// Static description of the 5G cell (Sec. II-A of the paper).
//
// One base station (BS) serves the whole cell; N small base stations (SBSs)
// with disjoint coverage each serve their own set of mobile-user (MU)
// classes. Content catalogue: K equal-size items (o = 1 after
// normalization). Each SBS n has cache capacity C_n (items, constraint (1)),
// downlink bandwidth B_n (items per slot, constraint (2)) and cache
// replacement price beta_n (eq. (7)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mdo::model {

/// One class of mobile users attached to a given SBS.
struct MuClass {
  /// omega_{m_n}: weighted transmission parameter towards the BS. Larger
  /// values model MUs near the cell edge (higher power/delay). Eq. (5).
  double omega_bs = 1.0;
  /// \hat{omega}_{m_n}: weighted transmission parameter towards the local
  /// SBS; typically orders of magnitude below omega_bs. Eq. (6).
  double omega_sbs = 0.0;
  /// \tilde{omega}_{m_n}: weighted transmission parameter of a cooperative
  /// SBS-to-SBS fetch (DESIGN.md §13). Sits between omega_sbs (local hit)
  /// and omega_bs (BS fetch); 0 keeps the neighbor tier free of charge.
  double omega_neigh = 0.0;
};

/// One directed inter-SBS link: the owning SBS n can fetch content cached
/// at SBS `peer` over the X2 sidehaul at up to `bandwidth` items per slot.
struct NeighborLink {
  std::size_t peer = 0;
  double bandwidth = 0.0;  // items per slot; 0 disables the link
};

/// SBS neighbor topology for the collaborative caching tier (DESIGN.md
/// §13). `links[n]` lists the neighbors SBS n can FETCH from, sorted by
/// peer index with at most one link per (n, peer) pair. An empty topology
/// (no `links` rows at all) is the paper's baseline two-way model and must
/// leave every code path bitwise untouched.
struct NeighborTopology {
  std::vector<std::vector<NeighborLink>> links;

  bool empty() const { return links.empty(); }

  /// Total number of directed links across all SBSs.
  std::size_t num_links() const;

  /// Throws InvalidArgument on shape errors: links.size() != num_sbs,
  /// out-of-range or self peers, negative bandwidth, unsorted/duplicate
  /// peers. An empty topology is always valid.
  void validate(std::size_t num_sbs) const;
};

/// Bidirectional ring: SBS n fetches from (n-1) mod N and (n+1) mod N,
/// each link capped at `bandwidth`. N == 1 yields an empty topology;
/// N == 2 yields one link per direction (no duplicates).
NeighborTopology ring_topology(std::size_t num_sbs, double bandwidth);

/// 4-neighbor grid: SBS n sits at (n / cols, n % cols) and links to the
/// occupied cells above/below/left/right. cols == 0 derives a near-square
/// width from num_sbs.
NeighborTopology grid_topology(std::size_t num_sbs, std::size_t cols,
                               double bandwidth);

/// Random geometric graph: SBSs are dropped uniformly in the unit square
/// (deterministically from `seed`) and every pair within `radius` is
/// linked both ways at `bandwidth`.
NeighborTopology random_geometric_topology(std::size_t num_sbs, double radius,
                                           double bandwidth,
                                           std::uint64_t seed);

/// One small base station and the MU classes it serves.
struct SbsConfig {
  std::size_t cache_capacity = 0;  // C_n, items
  double bandwidth = 0.0;          // B_n, items per slot
  double replacement_beta = 0.0;   // beta_n, cost per inserted item
  std::vector<MuClass> classes;    // M_n

  std::size_t num_classes() const { return classes.size(); }
};

/// The whole cell.
struct NetworkConfig {
  std::size_t num_contents = 0;  // K
  std::vector<SbsConfig> sbs;    // indexed by n
  /// Inter-SBS fetch topology; empty (the default) is the paper's two-way
  /// (local hit, BS fetch) model with no neighbor tier.
  NeighborTopology topology;

  std::size_t num_sbs() const { return sbs.size(); }

  /// True when the cooperative tier can carry traffic at all: some link
  /// with strictly positive bandwidth exists.
  bool has_neighbor_tier() const;

  std::size_t total_classes() const;

  /// Throws InvalidArgument when any dimension/parameter is inconsistent
  /// (no contents, no SBS, negative bandwidth/beta/omega, capacity > K...).
  void validate() const;

  /// One-line human-readable summary for logs.
  std::string summary() const;
};

}  // namespace mdo::model
