// Static description of the 5G cell (Sec. II-A of the paper).
//
// One base station (BS) serves the whole cell; N small base stations (SBSs)
// with disjoint coverage each serve their own set of mobile-user (MU)
// classes. Content catalogue: K equal-size items (o = 1 after
// normalization). Each SBS n has cache capacity C_n (items, constraint (1)),
// downlink bandwidth B_n (items per slot, constraint (2)) and cache
// replacement price beta_n (eq. (7)).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mdo::model {

/// One class of mobile users attached to a given SBS.
struct MuClass {
  /// omega_{m_n}: weighted transmission parameter towards the BS. Larger
  /// values model MUs near the cell edge (higher power/delay). Eq. (5).
  double omega_bs = 1.0;
  /// \hat{omega}_{m_n}: weighted transmission parameter towards the local
  /// SBS; typically orders of magnitude below omega_bs. Eq. (6).
  double omega_sbs = 0.0;
};

/// One small base station and the MU classes it serves.
struct SbsConfig {
  std::size_t cache_capacity = 0;  // C_n, items
  double bandwidth = 0.0;          // B_n, items per slot
  double replacement_beta = 0.0;   // beta_n, cost per inserted item
  std::vector<MuClass> classes;    // M_n

  std::size_t num_classes() const { return classes.size(); }
};

/// The whole cell.
struct NetworkConfig {
  std::size_t num_contents = 0;  // K
  std::vector<SbsConfig> sbs;    // indexed by n

  std::size_t num_sbs() const { return sbs.size(); }

  std::size_t total_classes() const;

  /// Throws InvalidArgument when any dimension/parameter is inconsistent
  /// (no contents, no SBS, negative bandwidth/beta/omega, capacity > K...).
  void validate() const;

  /// One-line human-readable summary for logs.
  std::string summary() const;
};

}  // namespace mdo::model
