// Feasibility checking and repair for the constraints (1)-(3), (10), (11).
//
// Online controllers pick y against *predicted* demand; evaluated against
// the true demand the bandwidth constraint (2) can be slightly violated.
// enforce_feasibility() is the documented repair: zero y where x = 0
// (constraint (3)) and proportionally scale each SBS's allocation down to
// its bandwidth (constraint (2)).
#pragma once

#include <string>
#include <vector>

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"
#include "model/sparse_demand.hpp"

namespace mdo::model {

/// One violated constraint, human-readable.
struct Violation {
  std::string description;
};

/// Checks (1) cache capacity, (2) bandwidth against `demand`,
/// (3) y <= x, and (11) y in [0, 1]. Integrality of x holds by type.
/// Returns all violations (empty means feasible within `tol`).
std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         const SlotDemand& demand,
                                         const SlotDecision& decision,
                                         double tol = 1e-6);

/// Convenience: true when check_feasibility() returns no violations.
bool is_feasible(const NetworkConfig& config, const SlotDemand& demand,
                 const SlotDecision& decision, double tol = 1e-6);

/// Repairs a decision in place so it is feasible for `demand`:
///  - clamps y into [0, 1],
///  - zeroes y where the content is not cached,
///  - scales each SBS's y uniformly when its bandwidth is exceeded.
/// The cache part is never modified (capacity violations throw
/// InvalidArgument: controllers must respect (1) themselves).
void enforce_feasibility(const NetworkConfig& config, const SlotDemand& demand,
                         SlotDecision& decision);

/// Representation-agnostic overloads; dense views delegate to the
/// functions above, sparse views evaluate the bandwidth load over stored
/// entries only (bit-identical, the skipped terms are exact zeros).
std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         SlotDemandView demand,
                                         const SlotDecision& decision,
                                         double tol = 1e-6);
bool is_feasible(const NetworkConfig& config, SlotDemandView demand,
                 const SlotDecision& decision, double tol = 1e-6);
void enforce_feasibility(const NetworkConfig& config, SlotDemandView demand,
                         SlotDecision& decision);

}  // namespace mdo::model
