// Feasibility checking and repair for the constraints (1)-(3), (10), (11).
//
// Online controllers pick y against *predicted* demand; evaluated against
// the true demand the bandwidth constraint (2) can be slightly violated.
// enforce_feasibility() is the documented repair: zero y where x = 0
// (constraint (3)) and proportionally scale each SBS's allocation down to
// its bandwidth (constraint (2)).
#pragma once

#include <string>
#include <vector>

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"
#include "model/sparse_demand.hpp"

namespace mdo::model {

/// One violated constraint, human-readable.
struct Violation {
  std::string description;
};

/// Designated neighbor source of content k for receiver SBS n: the first
/// (lowest peer index) positive-bandwidth link in n's adjacency row whose
/// peer caches k; returns config.num_sbs() when none exists. Every layer
/// (cooperative overlay, feasibility, rounding, event simulator) routes a
/// coordinate through the same designated source, so per-link bandwidth
/// budgets are well-defined and deterministic.
std::size_t neighbor_source(const NetworkConfig& config,
                            const CacheState& cache, std::size_t n,
                            std::size_t k);

/// Checks (1) cache capacity, (2) bandwidth against `demand`,
/// (3) y <= x, and (11) y in [0, 1]. Integrality of x holds by type.
/// When the decision carries a neighbor bank, additionally checks
/// y_neigh in [0, 1], y_local + y_neigh <= 1, availability (y_neigh > 0
/// needs a positive-bandwidth neighbor caching the content) and the
/// per-link bandwidth budgets under designated-source routing.
/// Returns all violations (empty means feasible within `tol`).
std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         const SlotDemand& demand,
                                         const SlotDecision& decision,
                                         double tol = 1e-6);

/// Convenience: true when check_feasibility() returns no violations.
bool is_feasible(const NetworkConfig& config, const SlotDemand& demand,
                 const SlotDecision& decision, double tol = 1e-6);

/// Repairs a decision in place so it is feasible for `demand`:
///  - clamps y into [0, 1],
///  - zeroes y where the content is not cached,
///  - scales each SBS's y uniformly when its bandwidth is exceeded,
///  - and, when a neighbor bank is present: clamps y_neigh, zeroes it
///    where no designated source exists, trims y_local + y_neigh to 1 and
///    scales each inter-SBS link down to its bandwidth cap.
/// The cache part is never modified (capacity violations throw
/// InvalidArgument: controllers must respect (1) themselves).
void enforce_feasibility(const NetworkConfig& config, const SlotDemand& demand,
                         SlotDecision& decision);

/// Representation-agnostic overloads; dense views delegate to the
/// functions above, sparse views evaluate the bandwidth load over stored
/// entries only (bit-identical, the skipped terms are exact zeros).
std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         SlotDemandView demand,
                                         const SlotDecision& decision,
                                         double tol = 1e-6);
bool is_feasible(const NetworkConfig& config, SlotDemandView demand,
                 const SlotDecision& decision, double tol = 1e-6);
void enforce_feasibility(const NetworkConfig& config, SlotDemandView demand,
                         SlotDecision& decision);

}  // namespace mdo::model
