#include "model/costs.hpp"

#include "linalg/vec.hpp"
#include "util/error.hpp"

namespace mdo::model {

double bs_operating_cost(const NetworkConfig& config, const SlotDemand& demand,
                         const LoadAllocation& load) {
  MDO_REQUIRE(demand.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  const bool neighbor = load.has_neighbor();
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const double* d = demand[n].data().data();
    const double* y = load.sbs_data(n).data();
    const double* z = neighbor ? load.neighbor_data(n).data() : nullptr;
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      // Residual 1 - y_local (- y_neigh when the neighbor bank exists):
      // the subtraction is a separate serial accumulation so the baseline
      // kernel sequence is untouched on bank-free decisions.
      double class_rest =
          linalg::residual_dot(y + m * k_count, d + m * k_count, k_count);
      if (neighbor) {
        class_rest -= linalg::dot_span(z + m * k_count, d + m * k_count,
                                       k_count);
      }
      weighted += sbs.classes[m].omega_bs * class_rest;
    }
    total += weighted * weighted;
  }
  return total;
}

double sbs_operating_cost(const NetworkConfig& config,
                          const SlotDemand& demand,
                          const LoadAllocation& load) {
  MDO_REQUIRE(demand.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const double* d = demand[n].data().data();
    const double* y = load.sbs_data(n).data();
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      const double class_served =
          linalg::dot_span(y + m * k_count, d + m * k_count, k_count);
      weighted += sbs.classes[m].omega_sbs * class_served;
    }
    total += weighted * weighted;
  }
  return total;
}

double neighbor_operating_cost(const NetworkConfig& config,
                               const SlotDemand& demand,
                               const LoadAllocation& load) {
  if (!load.has_neighbor()) return 0.0;
  MDO_REQUIRE(demand.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const double* d = demand[n].data().data();
    const double* z = load.neighbor_data(n).data();
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      const double class_served =
          linalg::dot_span(z + m * k_count, d + m * k_count, k_count);
      weighted += sbs.classes[m].omega_neigh * class_served;
    }
    total += weighted * weighted;
  }
  return total;
}

double replacement_cost(const NetworkConfig& config, const CacheState& cache,
                        const CacheState& previous) {
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    total += config.sbs[n].replacement_beta *
             static_cast<double>(cache.insertions_from(previous, n));
  }
  return total;
}

std::size_t replacement_count(const CacheState& cache,
                              const CacheState& previous) {
  std::size_t total = 0;
  for (std::size_t n = 0; n < cache.num_sbs(); ++n) {
    total += cache.insertions_from(previous, n);
  }
  return total;
}

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& other) {
  bs += other.bs;
  sbs += other.sbs;
  neigh += other.neigh;
  replacement += other.replacement;
  return *this;
}

CostBreakdown slot_cost(const NetworkConfig& config, const SlotDemand& demand,
                        const SlotDecision& decision,
                        const CacheState& previous) {
  CostBreakdown out;
  out.bs = bs_operating_cost(config, demand, decision.load);
  out.sbs = sbs_operating_cost(config, demand, decision.load);
  out.neigh = neighbor_operating_cost(config, demand, decision.load);
  out.replacement = replacement_cost(config, decision.cache, previous);
  return out;
}

CostBreakdown schedule_cost(const NetworkConfig& config,
                            const DemandTrace& trace, const Schedule& schedule,
                            const CacheState& initial_cache) {
  MDO_REQUIRE(schedule.size() == trace.horizon(),
              "schedule length must match trace horizon");
  CostBreakdown total;
  const CacheState* previous = &initial_cache;
  for (std::size_t t = 0; t < schedule.size(); ++t) {
    total += slot_cost(config, trace.slot(t), schedule[t], *previous);
    previous = &schedule[t].cache;
  }
  return total;
}

double bs_operating_cost(const NetworkConfig& config, SlotDemandView demand,
                         const LoadAllocation& load) {
  MDO_REQUIRE(demand.valid(), "bs_operating_cost: empty demand view");
  if (!demand.is_sparse()) {
    return bs_operating_cost(config, *demand.dense(), load);
  }
  const SparseSlotDemand& slot = *demand.sparse();
  MDO_REQUIRE(slot.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  const bool neighbor = load.has_neighbor();
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const SparseSbsDemand& d = slot[n];
    const double* y = load.sbs_data(n).data();
    const double* z = neighbor ? load.neighbor_data(n).data() : nullptr;
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      double class_rest = 0.0;
      for (const DemandEntry* it = d.row_begin(m); it != d.row_end(m); ++it) {
        class_rest += (1.0 - y[m * k_count + it->content]) * it->rate;
      }
      if (neighbor) {
        // Separate accumulation mirroring the dense residual_dot - dot_span
        // split, keeping sparse/dense bit-identity under the neighbor tier.
        double class_neigh = 0.0;
        for (const DemandEntry* it = d.row_begin(m); it != d.row_end(m);
             ++it) {
          class_neigh += z[m * k_count + it->content] * it->rate;
        }
        class_rest -= class_neigh;
      }
      weighted += sbs.classes[m].omega_bs * class_rest;
    }
    total += weighted * weighted;
  }
  return total;
}

double sbs_operating_cost(const NetworkConfig& config, SlotDemandView demand,
                          const LoadAllocation& load) {
  MDO_REQUIRE(demand.valid(), "sbs_operating_cost: empty demand view");
  if (!demand.is_sparse()) {
    return sbs_operating_cost(config, *demand.dense(), load);
  }
  const SparseSlotDemand& slot = *demand.sparse();
  MDO_REQUIRE(slot.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const SparseSbsDemand& d = slot[n];
    const double* y = load.sbs_data(n).data();
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      double class_served = 0.0;
      for (const DemandEntry* it = d.row_begin(m); it != d.row_end(m); ++it) {
        class_served += y[m * k_count + it->content] * it->rate;
      }
      weighted += sbs.classes[m].omega_sbs * class_served;
    }
    total += weighted * weighted;
  }
  return total;
}

double neighbor_operating_cost(const NetworkConfig& config,
                               SlotDemandView demand,
                               const LoadAllocation& load) {
  if (!load.has_neighbor()) return 0.0;
  MDO_REQUIRE(demand.valid(), "neighbor_operating_cost: empty demand view");
  if (!demand.is_sparse()) {
    return neighbor_operating_cost(config, *demand.dense(), load);
  }
  const SparseSlotDemand& slot = *demand.sparse();
  MDO_REQUIRE(slot.size() == config.num_sbs(), "demand shape mismatch");
  const std::size_t k_count = config.num_contents;
  double total = 0.0;
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const SparseSbsDemand& d = slot[n];
    const double* z = load.neighbor_data(n).data();
    double weighted = 0.0;
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      double class_served = 0.0;
      for (const DemandEntry* it = d.row_begin(m); it != d.row_end(m); ++it) {
        class_served += z[m * k_count + it->content] * it->rate;
      }
      weighted += sbs.classes[m].omega_neigh * class_served;
    }
    total += weighted * weighted;
  }
  return total;
}

CostBreakdown slot_cost(const NetworkConfig& config, SlotDemandView demand,
                        const SlotDecision& decision,
                        const CacheState& previous) {
  CostBreakdown out;
  out.bs = bs_operating_cost(config, demand, decision.load);
  out.sbs = sbs_operating_cost(config, demand, decision.load);
  out.neigh = neighbor_operating_cost(config, demand, decision.load);
  out.replacement = replacement_cost(config, decision.cache, previous);
  return out;
}

CostBreakdown schedule_cost(const NetworkConfig& config, DemandTraceView trace,
                            const Schedule& schedule,
                            const CacheState& initial_cache) {
  MDO_REQUIRE(trace.valid(), "schedule_cost: empty trace view");
  if (!trace.is_sparse()) {
    return schedule_cost(config, *trace.dense(), schedule, initial_cache);
  }
  MDO_REQUIRE(schedule.size() == trace.horizon(),
              "schedule length must match trace horizon");
  CostBreakdown total;
  const CacheState* previous = &initial_cache;
  for (std::size_t t = 0; t < schedule.size(); ++t) {
    total += slot_cost(config, trace.slot(t), schedule[t], *previous);
    previous = &schedule[t].cache;
  }
  return total;
}

}  // namespace mdo::model
