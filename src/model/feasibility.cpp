#include "model/feasibility.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mdo::model {

std::size_t neighbor_source(const NetworkConfig& config,
                            const CacheState& cache, std::size_t n,
                            std::size_t k) {
  if (config.topology.links.empty()) return config.num_sbs();
  for (const auto& link : config.topology.links[n]) {
    if (link.bandwidth > 0.0 && cache.cached(link.peer, k)) return link.peer;
  }
  return config.num_sbs();
}

namespace {

/// Index of `peer` in a sorted adjacency row; row.size() when absent.
std::size_t link_index(const std::vector<NeighborLink>& row,
                       std::size_t peer) {
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j].peer == peer) return j;
  }
  return row.size();
}

/// Neighbor-tier violations for receiver SBS n. `rate` maps (m, k) to the
/// demand rate; invoked only on coordinates with y_neigh > tol.
template <typename RateFn>
void check_neighbor_tier(const NetworkConfig& config,
                         const SlotDecision& decision, std::size_t n,
                         double tol, RateFn&& rate,
                         std::vector<Violation>& out) {
  const auto& sbs = config.sbs[n];
  const std::vector<NeighborLink>* row =
      config.topology.links.empty() ? nullptr : &config.topology.links[n];
  std::vector<double> link_load(row != nullptr ? row->size() : 0, 0.0);
  for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
    for (std::size_t k = 0; k < config.num_contents; ++k) {
      const double z = decision.load.neighbor_at(n, m, k);
      const double y = decision.load.at(n, m, k);
      if (z < -tol || z > 1.0 + tol) {
        std::ostringstream os;
        os << "SBS " << n << " class " << m << " content " << k
           << ": y_neigh=" << z << " outside [0,1]";
        out.push_back({os.str()});
      }
      if (y + z > 1.0 + tol) {
        std::ostringstream os;
        os << "SBS " << n << " class " << m << " content " << k
           << ": y_local + y_neigh = " << y + z << " exceeds 1";
        out.push_back({os.str()});
      }
      if (z > tol) {
        const std::size_t src =
            neighbor_source(config, decision.cache, n, k);
        if (src == config.num_sbs()) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k
             << ": y_neigh=" << z
             << " but no positive-bandwidth neighbor caches it";
          out.push_back({os.str()});
        } else {
          link_load[link_index(*row, src)] += rate(m, k) * z;
        }
      }
    }
  }
  for (std::size_t j = 0; j < link_load.size(); ++j) {
    if (link_load[j] > (*row)[j].bandwidth + tol) {
      std::ostringstream os;
      os << "SBS " << n << " link from SBS " << (*row)[j].peer << ": load "
         << link_load[j] << " exceeds link bandwidth "
         << (*row)[j].bandwidth;
      out.push_back({os.str()});
    }
  }
}

/// Neighbor-tier repair for receiver SBS n: clamp, zero unavailable
/// coordinates, trim y_local + y_neigh to 1, then scale each link down to
/// its cap. `rate` maps (m, k) to the demand rate.
template <typename RateFn>
void repair_neighbor_tier(const NetworkConfig& config, SlotDecision& decision,
                          std::size_t n, RateFn&& rate) {
  const auto& sbs = config.sbs[n];
  const std::vector<NeighborLink>* row =
      config.topology.links.empty() ? nullptr : &config.topology.links[n];
  std::vector<double> link_load(row != nullptr ? row->size() : 0, 0.0);
  for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
    for (std::size_t k = 0; k < config.num_contents; ++k) {
      double& z = decision.load.neighbor_at(n, m, k);
      z = std::clamp(z, 0.0, 1.0);
      if (z == 0.0) continue;
      const std::size_t src = neighbor_source(config, decision.cache, n, k);
      if (src == config.num_sbs()) {
        z = 0.0;
        continue;
      }
      const double y = decision.load.at(n, m, k);
      if (y + z > 1.0) z = 1.0 - y;
      link_load[link_index(*row, src)] += rate(m, k) * z;
    }
  }
  // Per-link proportional scale-down, mirroring the (2) repair.
  bool any_overloaded = false;
  std::vector<double> scale(link_load.size(), 1.0);
  for (std::size_t j = 0; j < link_load.size(); ++j) {
    if (link_load[j] > (*row)[j].bandwidth && link_load[j] > 0.0) {
      scale[j] = (*row)[j].bandwidth / link_load[j];
      any_overloaded = true;
    }
  }
  if (!any_overloaded) return;
  for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
    for (std::size_t k = 0; k < config.num_contents; ++k) {
      double& z = decision.load.neighbor_at(n, m, k);
      if (z == 0.0) continue;
      const std::size_t src = neighbor_source(config, decision.cache, n, k);
      if (src == config.num_sbs()) continue;
      z *= scale[link_index(*row, src)];
    }
  }
}

}  // namespace

std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         const SlotDemand& demand,
                                         const SlotDecision& decision,
                                         double tol) {
  std::vector<Violation> out;
  auto report = [&out](const std::string& text) { out.push_back({text}); };

  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    // (1) cache capacity
    const std::size_t cached = decision.cache.count(n);
    if (cached > sbs.cache_capacity) {
      std::ostringstream os;
      os << "SBS " << n << ": " << cached << " items cached, capacity "
         << sbs.cache_capacity;
      report(os.str());
    }
    // (2) bandwidth
    const double load = decision.load.sbs_load(n, demand[n]);
    if (load > sbs.bandwidth + tol) {
      std::ostringstream os;
      os << "SBS " << n << ": load " << load << " exceeds bandwidth "
         << sbs.bandwidth;
      report(os.str());
    }
    // (3) y <= x and (11) bounds
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        const double y = decision.load.at(n, m, k);
        if (y < -tol || y > 1.0 + tol) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " outside [0,1]";
          report(os.str());
        }
        if (y > tol && !decision.cache.cached(n, k)) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " but content not cached";
          report(os.str());
        }
      }
    }
    if (decision.load.has_neighbor()) {
      const double* d = demand[n].data().data();
      check_neighbor_tier(
          config, decision, n, tol,
          [&](std::size_t m, std::size_t k) {
            return d[m * config.num_contents + k];
          },
          out);
    }
  }
  return out;
}

bool is_feasible(const NetworkConfig& config, const SlotDemand& demand,
                 const SlotDecision& decision, double tol) {
  return check_feasibility(config, demand, decision, tol).empty();
}

void enforce_feasibility(const NetworkConfig& config, const SlotDemand& demand,
                         SlotDecision& decision) {
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    MDO_REQUIRE(decision.cache.count(n) <= sbs.cache_capacity,
                "cache capacity violated; controllers must respect (1)");
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        double& y = decision.load.at(n, m, k);
        y = std::clamp(y, 0.0, 1.0);
        if (!decision.cache.cached(n, k)) y = 0.0;
      }
    }
    const double load = decision.load.sbs_load(n, demand[n]);
    if (load > sbs.bandwidth && load > 0.0) {
      const double scale = sbs.bandwidth / load;
      for (double& y : decision.load.sbs_data(n)) y *= scale;
    }
    if (decision.load.has_neighbor()) {
      const double* d = demand[n].data().data();
      repair_neighbor_tier(config, decision, n,
                           [&](std::size_t m, std::size_t k) {
                             return d[m * config.num_contents + k];
                           });
    }
  }
}

std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         SlotDemandView demand,
                                         const SlotDecision& decision,
                                         double tol) {
  MDO_REQUIRE(demand.valid(), "check_feasibility: empty demand view");
  if (!demand.is_sparse()) {
    return check_feasibility(config, *demand.dense(), decision, tol);
  }
  std::vector<Violation> out;
  auto report = [&out](const std::string& text) { out.push_back({text}); };

  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const std::size_t cached = decision.cache.count(n);
    if (cached > sbs.cache_capacity) {
      std::ostringstream os;
      os << "SBS " << n << ": " << cached << " items cached, capacity "
         << sbs.cache_capacity;
      report(os.str());
    }
    const double load = sbs_load(decision.load, n, demand.sbs(n));
    if (load > sbs.bandwidth + tol) {
      std::ostringstream os;
      os << "SBS " << n << ": load " << load << " exceeds bandwidth "
         << sbs.bandwidth;
      report(os.str());
    }
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        const double y = decision.load.at(n, m, k);
        if (y < -tol || y > 1.0 + tol) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " outside [0,1]";
          report(os.str());
        }
        if (y > tol && !decision.cache.cached(n, k)) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " but content not cached";
          report(os.str());
        }
      }
    }
    if (decision.load.has_neighbor()) {
      const SparseSbsDemand& d = (*demand.sparse())[n];
      check_neighbor_tier(
          config, decision, n, tol,
          [&](std::size_t m, std::size_t k) -> double {
            for (const DemandEntry* it = d.row_begin(m); it != d.row_end(m);
                 ++it) {
              if (it->content == k) return it->rate;
            }
            return 0.0;
          },
          out);
    }
  }
  return out;
}

bool is_feasible(const NetworkConfig& config, SlotDemandView demand,
                 const SlotDecision& decision, double tol) {
  return check_feasibility(config, demand, decision, tol).empty();
}

void enforce_feasibility(const NetworkConfig& config, SlotDemandView demand,
                         SlotDecision& decision) {
  MDO_REQUIRE(demand.valid(), "enforce_feasibility: empty demand view");
  if (!demand.is_sparse()) {
    enforce_feasibility(config, *demand.dense(), decision);
    return;
  }
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    MDO_REQUIRE(decision.cache.count(n) <= sbs.cache_capacity,
                "cache capacity violated; controllers must respect (1)");
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        double& y = decision.load.at(n, m, k);
        y = std::clamp(y, 0.0, 1.0);
        if (!decision.cache.cached(n, k)) y = 0.0;
      }
    }
    const double load = sbs_load(decision.load, n, demand.sbs(n));
    if (load > sbs.bandwidth && load > 0.0) {
      const double scale = sbs.bandwidth / load;
      for (double& y : decision.load.sbs_data(n)) y *= scale;
    }
    if (decision.load.has_neighbor()) {
      const SparseSbsDemand& d = (*demand.sparse())[n];
      repair_neighbor_tier(config, decision, n,
                           [&](std::size_t m, std::size_t k) -> double {
                             for (const DemandEntry* it = d.row_begin(m);
                                  it != d.row_end(m); ++it) {
                               if (it->content == k) return it->rate;
                             }
                             return 0.0;
                           });
    }
  }
}

}  // namespace mdo::model
