#include "model/feasibility.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mdo::model {

std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         const SlotDemand& demand,
                                         const SlotDecision& decision,
                                         double tol) {
  std::vector<Violation> out;
  auto report = [&out](const std::string& text) { out.push_back({text}); };

  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    // (1) cache capacity
    const std::size_t cached = decision.cache.count(n);
    if (cached > sbs.cache_capacity) {
      std::ostringstream os;
      os << "SBS " << n << ": " << cached << " items cached, capacity "
         << sbs.cache_capacity;
      report(os.str());
    }
    // (2) bandwidth
    const double load = decision.load.sbs_load(n, demand[n]);
    if (load > sbs.bandwidth + tol) {
      std::ostringstream os;
      os << "SBS " << n << ": load " << load << " exceeds bandwidth "
         << sbs.bandwidth;
      report(os.str());
    }
    // (3) y <= x and (11) bounds
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        const double y = decision.load.at(n, m, k);
        if (y < -tol || y > 1.0 + tol) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " outside [0,1]";
          report(os.str());
        }
        if (y > tol && !decision.cache.cached(n, k)) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " but content not cached";
          report(os.str());
        }
      }
    }
  }
  return out;
}

bool is_feasible(const NetworkConfig& config, const SlotDemand& demand,
                 const SlotDecision& decision, double tol) {
  return check_feasibility(config, demand, decision, tol).empty();
}

void enforce_feasibility(const NetworkConfig& config, const SlotDemand& demand,
                         SlotDecision& decision) {
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    MDO_REQUIRE(decision.cache.count(n) <= sbs.cache_capacity,
                "cache capacity violated; controllers must respect (1)");
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        double& y = decision.load.at(n, m, k);
        y = std::clamp(y, 0.0, 1.0);
        if (!decision.cache.cached(n, k)) y = 0.0;
      }
    }
    const double load = decision.load.sbs_load(n, demand[n]);
    if (load > sbs.bandwidth && load > 0.0) {
      const double scale = sbs.bandwidth / load;
      for (double& y : decision.load.sbs_data(n)) y *= scale;
    }
  }
}

std::vector<Violation> check_feasibility(const NetworkConfig& config,
                                         SlotDemandView demand,
                                         const SlotDecision& decision,
                                         double tol) {
  MDO_REQUIRE(demand.valid(), "check_feasibility: empty demand view");
  if (!demand.is_sparse()) {
    return check_feasibility(config, *demand.dense(), decision, tol);
  }
  std::vector<Violation> out;
  auto report = [&out](const std::string& text) { out.push_back({text}); };

  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    const std::size_t cached = decision.cache.count(n);
    if (cached > sbs.cache_capacity) {
      std::ostringstream os;
      os << "SBS " << n << ": " << cached << " items cached, capacity "
         << sbs.cache_capacity;
      report(os.str());
    }
    const double load = sbs_load(decision.load, n, demand.sbs(n));
    if (load > sbs.bandwidth + tol) {
      std::ostringstream os;
      os << "SBS " << n << ": load " << load << " exceeds bandwidth "
         << sbs.bandwidth;
      report(os.str());
    }
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        const double y = decision.load.at(n, m, k);
        if (y < -tol || y > 1.0 + tol) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " outside [0,1]";
          report(os.str());
        }
        if (y > tol && !decision.cache.cached(n, k)) {
          std::ostringstream os;
          os << "SBS " << n << " class " << m << " content " << k << ": y="
             << y << " but content not cached";
          report(os.str());
        }
      }
    }
  }
  return out;
}

bool is_feasible(const NetworkConfig& config, SlotDemandView demand,
                 const SlotDecision& decision, double tol) {
  return check_feasibility(config, demand, decision, tol).empty();
}

void enforce_feasibility(const NetworkConfig& config, SlotDemandView demand,
                         SlotDecision& decision) {
  MDO_REQUIRE(demand.valid(), "enforce_feasibility: empty demand view");
  if (!demand.is_sparse()) {
    enforce_feasibility(config, *demand.dense(), decision);
    return;
  }
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    const auto& sbs = config.sbs[n];
    MDO_REQUIRE(decision.cache.count(n) <= sbs.cache_capacity,
                "cache capacity violated; controllers must respect (1)");
    for (std::size_t m = 0; m < sbs.num_classes(); ++m) {
      for (std::size_t k = 0; k < config.num_contents; ++k) {
        double& y = decision.load.at(n, m, k);
        y = std::clamp(y, 0.0, 1.0);
        if (!decision.cache.cached(n, k)) y = 0.0;
      }
    }
    const double load = sbs_load(decision.load, n, demand.sbs(n));
    if (load > sbs.bandwidth && load > 0.0) {
      const double scale = sbs.bandwidth / load;
      for (double& y : decision.load.sbs_data(n)) y *= scale;
    }
  }
}

}  // namespace mdo::model
