// Request-rate matrices Lambda (Sec. II-A).
//
// lambda[m, k] is the mean arrival rate of requests from MU class m for
// content k during one slot. SbsDemand holds one SBS's matrix for one slot;
// SlotDemand stacks all SBSs; DemandTrace is the whole horizon.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.hpp"
#include "model/network.hpp"

namespace mdo::model {

/// Dense M x K request-rate matrix for one SBS in one slot.
class SbsDemand {
 public:
  SbsDemand() = default;
  SbsDemand(std::size_t num_classes, std::size_t num_contents, double fill = 0.0);

  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_contents() const { return num_contents_; }

  double& at(std::size_t m, std::size_t k);
  double at(std::size_t m, std::size_t k) const;

  /// Sum over classes of lambda[m, k]: total demand for content k.
  double content_total(std::size_t k) const;

  /// All K column sums in one O(M*K) pass; out is resized to
  /// num_contents(). Each column accumulates in ascending class order, so
  /// out[k] is bit-identical to content_total(k) — callers that previously
  /// called content_total inside a K-loop (O(M*K^2)) should use this.
  /// Templated over the output vector so both plain std::vector<double>
  /// and the aligned linalg::Vec callers work without a copy.
  template <class Vector>
  void content_totals_into(Vector& out) const {
    out.assign(num_contents_, 0.0);
    const double* row = lambda_.data();
    for (std::size_t m = 0; m < num_classes_; ++m, row += num_contents_) {
      for (std::size_t k = 0; k < num_contents_; ++k) out[k] += row[k];
    }
  }
  linalg::Vec content_totals() const;

  /// Sum of all entries.
  double total() const;

  /// Raw row-major storage (class-major, 64-byte aligned), e.g. for
  /// solvers.
  const linalg::Vec& data() const { return lambda_; }
  linalg::Vec& data() { return lambda_; }

 private:
  std::size_t num_classes_ = 0;
  std::size_t num_contents_ = 0;
  linalg::Vec lambda_;
};

/// All SBSs' demand matrices for one slot, indexed by SBS.
using SlotDemand = std::vector<SbsDemand>;

/// The full horizon of demand, indexed by slot then SBS.
class DemandTrace {
 public:
  DemandTrace() = default;
  explicit DemandTrace(std::vector<SlotDemand> slots);

  std::size_t horizon() const { return slots_.size(); }

  const SlotDemand& slot(std::size_t t) const;
  SlotDemand& slot(std::size_t t);

  void push_back(SlotDemand slot_demand);

  /// Drops every slot; controllers reuse one trace buffer per window.
  void clear() { slots_.clear(); }

  /// Sub-trace covering slots [begin, begin+len) (clamped to the horizon);
  /// used to hand prediction windows to the horizon solver.
  DemandTrace window(std::size_t begin, std::size_t len) const;

  /// Throws InvalidArgument if any slot's shape disagrees with the config
  /// or any rate is negative/non-finite.
  void validate(const NetworkConfig& config) const;

 private:
  std::vector<SlotDemand> slots_;
};

/// Builds a zero SlotDemand shaped after the config.
SlotDemand make_zero_slot_demand(const NetworkConfig& config);

}  // namespace mdo::model
