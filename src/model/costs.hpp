// The three cost components of the objective (9) (Sec. II-B).
//
//  f_t (eq. 5): BS operating cost, per SBS the square of the omega-weighted
//               traffic that the BS still has to serve.
//  g_t (eq. 6): SBS operating cost, same form with \hat{omega} weights on
//               the traffic the SBS serves.
//  h   (eq. 8): cache replacement cost, beta_n per item inserted between
//               consecutive slots.
//
// Under a non-empty neighbor topology (DESIGN.md §13) a fourth component
// \tilde{f}_t appears: per SBS the square of the \tilde{omega}-weighted
// traffic pulled from neighbor caches, and the BS residual shrinks to
// 1 - y_local - y_neigh. All neighbor terms are guarded on
// LoadAllocation::has_neighbor(), so decisions without the bank evaluate
// the baseline arithmetic instruction for instruction.
#pragma once

#include <cstddef>

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"
#include "model/sparse_demand.hpp"

namespace mdo::model {

/// f_t(Y^t), eq. (5). Demand and load must be shaped after the config.
double bs_operating_cost(const NetworkConfig& config, const SlotDemand& demand,
                         const LoadAllocation& load);

/// g_t(Y^t), eq. (6).
double sbs_operating_cost(const NetworkConfig& config,
                          const SlotDemand& demand,
                          const LoadAllocation& load);

/// \tilde{f}_t: the neighbor-tier operating cost, per SBS the square of the
/// \tilde{omega}-weighted traffic served out of neighbor caches. 0.0 when
/// the load carries no neighbor bank.
double neighbor_operating_cost(const NetworkConfig& config,
                               const SlotDemand& demand,
                               const LoadAllocation& load);

/// h(X^t, X^{t-1}), eq. (8).
double replacement_cost(const NetworkConfig& config, const CacheState& cache,
                        const CacheState& previous);

/// Total number of items inserted across all SBSs between two slots
/// (the "number of cache replacement times" series of Fig. 2c/3b/4b).
std::size_t replacement_count(const CacheState& cache,
                              const CacheState& previous);

/// One slot's cost split by component.
struct CostBreakdown {
  double bs = 0.0;           // f_t
  double sbs = 0.0;          // g_t
  double neigh = 0.0;        // \tilde{f}_t (0.0 without a neighbor tier)
  double replacement = 0.0;  // h

  double total() const { return bs + sbs + neigh + replacement; }

  CostBreakdown& operator+=(const CostBreakdown& other);

  friend bool operator==(const CostBreakdown&, const CostBreakdown&) = default;
};

/// Evaluates one slot: f + g + h relative to `previous` cache state.
CostBreakdown slot_cost(const NetworkConfig& config, const SlotDemand& demand,
                        const SlotDecision& decision,
                        const CacheState& previous);

/// Evaluates a whole schedule against a demand trace, starting from
/// `initial_cache` (the x^0 of the formulation; all-empty in the paper).
CostBreakdown schedule_cost(const NetworkConfig& config,
                            const DemandTrace& trace,
                            const Schedule& schedule,
                            const CacheState& initial_cache);

/// Representation-agnostic overloads. A dense view delegates to the
/// functions above verbatim; a sparse view accumulates over stored entries
/// in the same index order, which is bit-identical because the skipped
/// dense terms multiply exact zeros.
double bs_operating_cost(const NetworkConfig& config, SlotDemandView demand,
                         const LoadAllocation& load);
double sbs_operating_cost(const NetworkConfig& config, SlotDemandView demand,
                          const LoadAllocation& load);
double neighbor_operating_cost(const NetworkConfig& config,
                               SlotDemandView demand,
                               const LoadAllocation& load);
CostBreakdown slot_cost(const NetworkConfig& config, SlotDemandView demand,
                        const SlotDecision& decision,
                        const CacheState& previous);
CostBreakdown schedule_cost(const NetworkConfig& config, DemandTraceView trace,
                            const Schedule& schedule,
                            const CacheState& initial_cache);

}  // namespace mdo::model
