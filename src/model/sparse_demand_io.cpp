#include "model/sparse_demand_io.hpp"

#include <cstring>

#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace mdo::model {

namespace {

constexpr char kTraceMagic[8] = {'M', 'D', 'O', 'S', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kTraceVersion = 1;

}  // namespace

void write_sparse_demand(util::BinaryWriter& w, const SparseSbsDemand& demand) {
  MDO_REQUIRE(demand.finalized(),
              "cannot serialize an unfinalized SparseSbsDemand");
  w.size(demand.num_classes());
  w.size(demand.num_contents());
  for (std::size_t m = 0; m < demand.num_classes(); ++m) {
    const DemandEntry* begin = demand.row_begin(m);
    const DemandEntry* end = demand.row_end(m);
    w.size(static_cast<std::size_t>(end - begin));
    for (const DemandEntry* it = begin; it != end; ++it) {
      w.size(it->content);
      w.f64(it->rate);
    }
  }
}

SparseSbsDemand read_sparse_demand(util::BinaryReader& r) {
  const std::size_t num_classes = r.count();
  const std::size_t num_contents = r.size();
  SparseSbsDemand demand(num_classes, num_contents);
  for (std::size_t m = 0; m < num_classes; ++m) {
    const std::size_t row = r.count();
    for (std::size_t i = 0; i < row; ++i) {
      const std::size_t content = r.size();
      const double rate = r.f64();
      demand.append(m, content, rate);
    }
  }
  demand.finalize();
  return demand;
}

void write_sparse_trace(util::BinaryWriter& w, const SparseDemandTrace& trace) {
  w.size(trace.horizon());
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    const SparseSlotDemand& slot = trace.slot(t);
    w.size(slot.size());
    for (const SparseSbsDemand& demand : slot) {
      write_sparse_demand(w, demand);
    }
  }
}

SparseDemandTrace read_sparse_trace(util::BinaryReader& r) {
  SparseDemandTrace trace;
  const std::size_t horizon = r.count();
  for (std::size_t t = 0; t < horizon; ++t) {
    SparseSlotDemand slot;
    const std::size_t num_sbs = r.count();
    slot.reserve(num_sbs);
    for (std::size_t n = 0; n < num_sbs; ++n) {
      slot.push_back(read_sparse_demand(r));
    }
    trace.push_back(std::move(slot));
  }
  return trace;
}

void save_sparse_trace(const std::string& path,
                       const SparseDemandTrace& trace) {
  util::BinaryWriter payload;
  write_sparse_trace(payload, trace);
  const std::vector<std::uint8_t> body = payload.take();

  util::BinaryWriter file;
  for (const char c : kTraceMagic) file.u8(static_cast<std::uint8_t>(c));
  file.u32(kTraceVersion);
  file.u64(static_cast<std::uint64_t>(body.size()));
  file.u64(util::fnv1a64(body.data(), body.size()));
  std::vector<std::uint8_t> bytes = file.take();
  bytes.insert(bytes.end(), body.begin(), body.end());
  util::write_file_atomic(path, bytes);
}

SparseDemandTrace load_sparse_trace(const std::string& path) {
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  util::BinaryReader header(bytes);
  MDO_REQUIRE(bytes.size() >= sizeof(kTraceMagic) + 4 + 8 + 8,
              "sparse trace file too short for its header");
  for (const char c : kTraceMagic) {
    MDO_REQUIRE(header.u8() == static_cast<std::uint8_t>(c),
                "sparse trace file has wrong magic");
  }
  MDO_REQUIRE(header.u32() == kTraceVersion,
              "sparse trace file has unsupported version");
  const std::uint64_t declared = header.u64();
  const std::uint64_t checksum = header.u64();
  MDO_REQUIRE(declared == header.remaining(),
              "sparse trace payload size mismatch (truncated or trailing "
              "bytes)");
  const std::uint8_t* body = bytes.data() + (bytes.size() - declared);
  MDO_REQUIRE(util::fnv1a64(body, declared) == checksum,
              "sparse trace checksum mismatch (corrupted file)");
  util::BinaryReader payload(body, static_cast<std::size_t>(declared));
  SparseDemandTrace trace = read_sparse_trace(payload);
  MDO_REQUIRE(payload.exhausted(),
              "sparse trace payload has trailing bytes");
  return trace;
}

}  // namespace mdo::model
