#include "model/instance.hpp"

#include "util/error.hpp"

namespace mdo::model {

void ProblemInstance::validate() const {
  config.validate();
  if (use_sparse_demand) {
    sparse_demand.validate(config);
  } else {
    demand.validate(config);
  }
  MDO_REQUIRE(initial_cache.num_sbs() == config.num_sbs(),
              "initial cache SBS count mismatch");
  MDO_REQUIRE(initial_cache.num_contents() == config.num_contents,
              "initial cache catalogue size mismatch");
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    MDO_REQUIRE(initial_cache.count(n) <= config.sbs[n].cache_capacity,
                "initial cache exceeds capacity at SBS " + std::to_string(n));
  }
}

}  // namespace mdo::model
