#include "model/demand.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mdo::model {

SbsDemand::SbsDemand(std::size_t num_classes, std::size_t num_contents,
                     double fill)
    : num_classes_(num_classes),
      num_contents_(num_contents),
      lambda_(num_classes * num_contents, fill) {}

double& SbsDemand::at(std::size_t m, std::size_t k) {
  MDO_REQUIRE(m < num_classes_ && k < num_contents_,
              "demand index out of range");
  return lambda_[m * num_contents_ + k];
}

double SbsDemand::at(std::size_t m, std::size_t k) const {
  MDO_REQUIRE(m < num_classes_ && k < num_contents_,
              "demand index out of range");
  return lambda_[m * num_contents_ + k];
}

double SbsDemand::content_total(std::size_t k) const {
  MDO_REQUIRE(k < num_contents_, "content index out of range");
  double acc = 0.0;
  for (std::size_t m = 0; m < num_classes_; ++m)
    acc += lambda_[m * num_contents_ + k];
  return acc;
}

linalg::Vec SbsDemand::content_totals() const {
  linalg::Vec out;
  content_totals_into(out);
  return out;
}

double SbsDemand::total() const {
  double acc = 0.0;
  for (const double v : lambda_) acc += v;
  return acc;
}

DemandTrace::DemandTrace(std::vector<SlotDemand> slots)
    : slots_(std::move(slots)) {}

const SlotDemand& DemandTrace::slot(std::size_t t) const {
  MDO_REQUIRE(t < slots_.size(), "slot index out of range");
  return slots_[t];
}

SlotDemand& DemandTrace::slot(std::size_t t) {
  MDO_REQUIRE(t < slots_.size(), "slot index out of range");
  return slots_[t];
}

void DemandTrace::push_back(SlotDemand slot_demand) {
  slots_.push_back(std::move(slot_demand));
}

DemandTrace DemandTrace::window(std::size_t begin, std::size_t len) const {
  DemandTrace out;
  for (std::size_t t = begin; t < begin + len && t < slots_.size(); ++t) {
    out.push_back(slots_[t]);
  }
  return out;
}

void DemandTrace::validate(const NetworkConfig& config) const {
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    const auto& slot_demand = slots_[t];
    MDO_REQUIRE(slot_demand.size() == config.num_sbs(),
                "slot " + std::to_string(t) + ": SBS count mismatch");
    for (std::size_t n = 0; n < slot_demand.size(); ++n) {
      const auto& d = slot_demand[n];
      MDO_REQUIRE(d.num_classes() == config.sbs[n].num_classes(),
                  "slot " + std::to_string(t) + ": class count mismatch");
      MDO_REQUIRE(d.num_contents() == config.num_contents,
                  "slot " + std::to_string(t) + ": content count mismatch");
      for (const double v : d.data()) {
        MDO_REQUIRE(std::isfinite(v) && v >= 0.0,
                    "slot " + std::to_string(t) + ": invalid rate");
      }
    }
  }
}

SlotDemand make_zero_slot_demand(const NetworkConfig& config) {
  SlotDemand out;
  out.reserve(config.num_sbs());
  for (const auto& s : config.sbs) {
    out.emplace_back(s.num_classes(), config.num_contents, 0.0);
  }
  return out;
}

}  // namespace mdo::model
