#include "model/network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdo::model {

std::size_t NeighborTopology::num_links() const {
  std::size_t total = 0;
  for (const auto& row : links) total += row.size();
  return total;
}

void NeighborTopology::validate(std::size_t num_sbs) const {
  if (links.empty()) return;
  MDO_REQUIRE(links.size() == num_sbs,
              "neighbor topology must have one adjacency row per SBS");
  for (std::size_t n = 0; n < links.size(); ++n) {
    const std::string tag = "SBS " + std::to_string(n) + " topology: ";
    std::size_t previous = 0;
    bool first = true;
    for (const auto& link : links[n]) {
      MDO_REQUIRE(link.peer < num_sbs, tag + "peer index out of range");
      MDO_REQUIRE(link.peer != n, tag + "self link");
      MDO_REQUIRE(link.bandwidth >= 0.0, tag + "negative link bandwidth");
      MDO_REQUIRE(first || link.peer > previous,
                  tag + "links must be sorted by peer with no duplicates");
      previous = link.peer;
      first = false;
    }
  }
}

namespace {

/// Symmetrizes an undirected edge list into sorted per-SBS fetch rows.
NeighborTopology from_undirected_edges(
    std::size_t num_sbs,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    double bandwidth) {
  NeighborTopology topology;
  if (edges.empty()) return topology;
  topology.links.resize(num_sbs);
  for (const auto& [a, b] : edges) {
    topology.links[a].push_back({b, bandwidth});
    topology.links[b].push_back({a, bandwidth});
  }
  for (auto& row : topology.links) {
    std::sort(row.begin(), row.end(),
              [](const NeighborLink& x, const NeighborLink& y) {
                return x.peer < y.peer;
              });
  }
  return topology;
}

}  // namespace

NeighborTopology ring_topology(std::size_t num_sbs, double bandwidth) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (num_sbs >= 2) {
    for (std::size_t n = 0; n + 1 < num_sbs; ++n) edges.emplace_back(n, n + 1);
    // Close the ring, except for N == 2 where 0-1 already exists.
    if (num_sbs > 2) edges.emplace_back(num_sbs - 1, 0);
  }
  return from_undirected_edges(num_sbs, edges, bandwidth);
}

NeighborTopology grid_topology(std::size_t num_sbs, std::size_t cols,
                               double bandwidth) {
  if (cols == 0) {
    cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_sbs))));
  }
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t n = 0; n < num_sbs; ++n) {
    // Right neighbor (same row) and the cell below, when occupied.
    if ((n % cols) + 1 < cols && n + 1 < num_sbs) edges.emplace_back(n, n + 1);
    if (n + cols < num_sbs) edges.emplace_back(n, n + cols);
  }
  return from_undirected_edges(num_sbs, edges, bandwidth);
}

NeighborTopology random_geometric_topology(std::size_t num_sbs, double radius,
                                           double bandwidth,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> px(num_sbs), py(num_sbs);
  for (std::size_t n = 0; n < num_sbs; ++n) {
    px[n] = rng.uniform();
    py[n] = rng.uniform();
  }
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  const double r2 = radius * radius;
  for (std::size_t a = 0; a < num_sbs; ++a) {
    for (std::size_t b = a + 1; b < num_sbs; ++b) {
      const double dx = px[a] - px[b];
      const double dy = py[a] - py[b];
      if (dx * dx + dy * dy <= r2) edges.emplace_back(a, b);
    }
  }
  return from_undirected_edges(num_sbs, edges, bandwidth);
}

bool NetworkConfig::has_neighbor_tier() const {
  for (const auto& row : topology.links) {
    for (const auto& link : row) {
      if (link.bandwidth > 0.0) return true;
    }
  }
  return false;
}

std::size_t NetworkConfig::total_classes() const {
  std::size_t total = 0;
  for (const auto& s : sbs) total += s.num_classes();
  return total;
}

void NetworkConfig::validate() const {
  MDO_REQUIRE(num_contents > 0, "network must offer at least one content");
  MDO_REQUIRE(!sbs.empty(), "network must have at least one SBS");
  for (std::size_t n = 0; n < sbs.size(); ++n) {
    const auto& s = sbs[n];
    const std::string tag = "SBS " + std::to_string(n) + ": ";
    MDO_REQUIRE(s.cache_capacity <= num_contents,
                tag + "cache capacity exceeds catalogue size");
    MDO_REQUIRE(s.bandwidth >= 0.0, tag + "negative bandwidth");
    MDO_REQUIRE(s.replacement_beta >= 0.0, tag + "negative replacement beta");
    MDO_REQUIRE(!s.classes.empty(), tag + "must serve at least one MU class");
    for (const auto& c : s.classes) {
      MDO_REQUIRE(c.omega_bs >= 0.0, tag + "negative omega (BS)");
      MDO_REQUIRE(c.omega_sbs >= 0.0, tag + "negative omega (SBS)");
      MDO_REQUIRE(c.omega_neigh >= 0.0, tag + "negative omega (neighbor)");
    }
  }
  topology.validate(num_sbs());
}

std::string NetworkConfig::summary() const {
  std::ostringstream os;
  os << "NetworkConfig{K=" << num_contents << ", N=" << num_sbs()
     << ", classes=" << total_classes();
  if (!topology.empty()) os << ", links=" << topology.num_links();
  os << "}";
  return os.str();
}

}  // namespace mdo::model
