#include "model/network.hpp"

#include <sstream>

#include "util/error.hpp"

namespace mdo::model {

std::size_t NetworkConfig::total_classes() const {
  std::size_t total = 0;
  for (const auto& s : sbs) total += s.num_classes();
  return total;
}

void NetworkConfig::validate() const {
  MDO_REQUIRE(num_contents > 0, "network must offer at least one content");
  MDO_REQUIRE(!sbs.empty(), "network must have at least one SBS");
  for (std::size_t n = 0; n < sbs.size(); ++n) {
    const auto& s = sbs[n];
    const std::string tag = "SBS " + std::to_string(n) + ": ";
    MDO_REQUIRE(s.cache_capacity <= num_contents,
                tag + "cache capacity exceeds catalogue size");
    MDO_REQUIRE(s.bandwidth >= 0.0, tag + "negative bandwidth");
    MDO_REQUIRE(s.replacement_beta >= 0.0, tag + "negative replacement beta");
    MDO_REQUIRE(!s.classes.empty(), tag + "must serve at least one MU class");
    for (const auto& c : s.classes) {
      MDO_REQUIRE(c.omega_bs >= 0.0, tag + "negative omega (BS)");
      MDO_REQUIRE(c.omega_sbs >= 0.0, tag + "negative omega (SBS)");
    }
  }
}

std::string NetworkConfig::summary() const {
  std::ostringstream os;
  os << "NetworkConfig{K=" << num_contents << ", N=" << num_sbs()
     << ", classes=" << total_classes() << "}";
  return os.str();
}

}  // namespace mdo::model
