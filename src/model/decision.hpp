// Decision variables (Sec. II-A): caching X and load balancing Y.
//
// CacheState holds x[n, k] in {0, 1} for one slot; LoadAllocation holds
// the routing fractions for one slot. In the baseline two-way model these
// are y_local[n, m, k] in [0, 1] with the BS share y_bs = 1 - y_local
// implied (eq. (4)) and never stored. Under a non-empty neighbor topology
// (DESIGN.md §13) a second bank y_neigh[n, m, k] is allocated lazily and
// the BS share becomes 1 - y_local - y_neigh; the bank is absent on the
// empty topology so the baseline arithmetic is bitwise untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/demand.hpp"
#include "model/network.hpp"

namespace mdo::model {

/// Per-slot caching decision x[n, k] in {0, 1}.
class CacheState {
 public:
  CacheState() = default;

  /// All-empty caches shaped after the config.
  explicit CacheState(const NetworkConfig& config);

  std::size_t num_sbs() const { return x_.size(); }
  std::size_t num_contents() const { return num_contents_; }

  bool cached(std::size_t n, std::size_t k) const;
  void set(std::size_t n, std::size_t k, bool value);

  /// Number of items cached at SBS n.
  std::size_t count(std::size_t n) const;

  /// Items inserted going from `prev` to `*this` at SBS n:
  /// sum_k (x - x_prev)^+, the quantity priced by eq. (7).
  std::size_t insertions_from(const CacheState& prev, std::size_t n) const;

  /// Raw per-SBS bitmap (0/1 bytes).
  const std::vector<std::uint8_t>& sbs_bitmap(std::size_t n) const;

  bool operator==(const CacheState& other) const = default;

 private:
  std::size_t num_contents_ = 0;
  std::vector<std::vector<std::uint8_t>> x_;
};

/// Per-slot load-balancing decision y[n, m, k] in [0, 1].
class LoadAllocation {
 public:
  LoadAllocation() = default;

  /// All-zero allocation (everything served by the BS).
  explicit LoadAllocation(const NetworkConfig& config);

  std::size_t num_sbs() const { return shape_classes_.size(); }
  std::size_t num_classes(std::size_t n) const;
  std::size_t num_contents() const { return num_contents_; }

  double at(std::size_t n, std::size_t m, std::size_t k) const;
  double& at(std::size_t n, std::size_t m, std::size_t k);

  /// SBS-served volume at SBS n: sum_{m,k} lambda * y (left side of (2)).
  double sbs_load(std::size_t n, const SbsDemand& demand) const;

  /// Flat per-SBS storage (class-major then content, 64-byte aligned), for
  /// solvers.
  const linalg::Vec& sbs_data(std::size_t n) const;
  linalg::Vec& sbs_data(std::size_t n);

  /// True once the neighbor-tier bank y_neigh exists. Decisions produced
  /// on an empty topology never allocate it.
  bool has_neighbor() const { return !yn_.empty(); }

  /// Allocates the all-zero neighbor bank (same shape as the local bank);
  /// idempotent.
  void ensure_neighbor();

  /// y_neigh[n, m, k]; the const read returns 0.0 when the bank is absent,
  /// the mutable access requires ensure_neighbor() first.
  double neighbor_at(std::size_t n, std::size_t m, std::size_t k) const;
  double& neighbor_at(std::size_t n, std::size_t m, std::size_t k);

  /// Traffic SBS n pulls over the neighbor tier: sum_{m,k} lambda * y_neigh.
  /// 0.0 when the bank is absent.
  double neighbor_load(std::size_t n, const SbsDemand& demand) const;

  /// Flat neighbor-bank storage; requires has_neighbor().
  const linalg::Vec& neighbor_data(std::size_t n) const;
  linalg::Vec& neighbor_data(std::size_t n);

 private:
  std::size_t num_contents_ = 0;
  std::vector<std::size_t> shape_classes_;
  std::vector<linalg::Vec> y_;
  std::vector<linalg::Vec> yn_;  // neighbor tier; empty unless ensured
};

/// Joint decision for one slot.
struct SlotDecision {
  CacheState cache;
  LoadAllocation load;
};

/// A decision per slot over a horizon.
using Schedule = std::vector<SlotDecision>;

}  // namespace mdo::model
