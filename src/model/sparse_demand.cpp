#include "model/sparse_demand.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdo::model {

SparseSbsDemand::SparseSbsDemand(std::size_t num_classes,
                                 std::size_t num_contents)
    : num_classes_(num_classes), num_contents_(num_contents) {
  row_ptr_.reserve(num_classes_ + 1);
  row_ptr_.push_back(0);
}

void SparseSbsDemand::append(std::size_t m, std::size_t k, double rate) {
  MDO_REQUIRE(!finalized_, "SparseSbsDemand: append after finalize");
  MDO_REQUIRE(m < num_classes_, "SparseSbsDemand: class out of range");
  MDO_REQUIRE(k < num_contents_, "SparseSbsDemand: content out of range");
  const std::size_t open_row = row_ptr_.size() - 1;
  MDO_REQUIRE(m >= open_row,
              "SparseSbsDemand: entries must arrive in ascending class order");
  while (row_ptr_.size() - 1 < m) row_ptr_.push_back(entries_.size());
  if (entries_.size() > row_ptr_.back()) {
    MDO_REQUIRE(k > entries_.back().content,
                "SparseSbsDemand: entries must arrive in ascending content "
                "order within a class");
  }
  entries_.push_back(DemandEntry{k, rate});
}

void SparseSbsDemand::finalize() {
  MDO_REQUIRE(!finalized_, "SparseSbsDemand: finalize called twice");
  if (row_ptr_.empty()) row_ptr_.push_back(0);
  while (row_ptr_.size() - 1 < num_classes_) row_ptr_.push_back(entries_.size());
  support_.clear();
  support_.reserve(entries_.size());
  for (const DemandEntry& entry : entries_) support_.push_back(entry.content);
  std::sort(support_.begin(), support_.end());
  support_.erase(std::unique(support_.begin(), support_.end()),
                 support_.end());
  // Column totals accumulate per content in ascending class order, matching
  // SbsDemand::content_total's loop exactly.
  support_totals_.assign(support_.size(), 0.0);
  for (std::size_t m = 0; m < num_classes_; ++m) {
    for (const DemandEntry* it = row_begin(m); it != row_end(m); ++it) {
      const auto pos = std::lower_bound(support_.begin(), support_.end(),
                                        it->content) -
                       support_.begin();
      support_totals_[static_cast<std::size_t>(pos)] += it->rate;
    }
  }
  finalized_ = true;
}

const DemandEntry* SparseSbsDemand::row_begin(std::size_t m) const {
  MDO_REQUIRE(m < num_classes_, "SparseSbsDemand: class out of range");
  const std::size_t begin = m + 1 < row_ptr_.size() ? row_ptr_[m] : nnz();
  return entries_.data() + begin;
}

const DemandEntry* SparseSbsDemand::row_end(std::size_t m) const {
  MDO_REQUIRE(m < num_classes_, "SparseSbsDemand: class out of range");
  const std::size_t end = m + 2 <= row_ptr_.size() ? row_ptr_[m + 1] : nnz();
  return entries_.data() + end;
}

double SparseSbsDemand::at(std::size_t m, std::size_t k) const {
  MDO_REQUIRE(k < num_contents_, "SparseSbsDemand: content out of range");
  const DemandEntry* begin = row_begin(m);
  const DemandEntry* end = row_end(m);
  const DemandEntry* it = std::lower_bound(
      begin, end, k,
      [](const DemandEntry& e, std::size_t key) { return e.content < key; });
  return (it != end && it->content == k) ? it->rate : 0.0;
}

double SparseSbsDemand::total() const {
  double sum = 0.0;
  for (const DemandEntry& entry : entries_) sum += entry.rate;
  return sum;
}

double SparseSbsDemand::content_total(std::size_t k) const {
  MDO_REQUIRE(finalized_, "SparseSbsDemand: query before finalize");
  MDO_REQUIRE(k < num_contents_, "SparseSbsDemand: content out of range");
  const auto it = std::lower_bound(support_.begin(), support_.end(), k);
  if (it == support_.end() || *it != k) return 0.0;
  return support_totals_[static_cast<std::size_t>(it - support_.begin())];
}

const std::vector<std::size_t>& SparseSbsDemand::support() const {
  MDO_REQUIRE(finalized_, "SparseSbsDemand: query before finalize");
  return support_;
}

void SparseSbsDemand::scale_by_content(const std::vector<double>& factor) {
  MDO_REQUIRE(finalized_, "SparseSbsDemand: scale before finalize");
  MDO_REQUIRE(factor.size() == num_contents_,
              "SparseSbsDemand: factor size mismatch");
  for (DemandEntry& entry : entries_) entry.rate *= factor[entry.content];
  // Rebuild the column totals with the same ascending-class accumulation as
  // finalize(), so they match the dense content_total over the scaled matrix.
  support_totals_.assign(support_.size(), 0.0);
  for (std::size_t m = 0; m < num_classes_; ++m) {
    for (const DemandEntry* it = row_begin(m); it != row_end(m); ++it) {
      const auto pos = std::lower_bound(support_.begin(), support_.end(),
                                        it->content) -
                       support_.begin();
      support_totals_[static_cast<std::size_t>(pos)] += it->rate;
    }
  }
}

SparseSbsDemand SparseSbsDemand::from_dense(const SbsDemand& dense,
                                            double min_rate) {
  MDO_REQUIRE(std::isfinite(min_rate) && min_rate >= 0.0,
              "from_dense: min_rate must be finite and nonnegative");
  SparseSbsDemand sparse(dense.num_classes(), dense.num_contents());
  for (std::size_t m = 0; m < dense.num_classes(); ++m) {
    for (std::size_t k = 0; k < dense.num_contents(); ++k) {
      const double rate = dense.at(m, k);
      if (rate != 0.0 && !(rate < min_rate)) sparse.append(m, k, rate);
    }
  }
  sparse.finalize();
  return sparse;
}

SbsDemand SparseSbsDemand::to_dense() const {
  SbsDemand dense(num_classes_, num_contents_);
  for (std::size_t m = 0; m < num_classes_; ++m) {
    for (const DemandEntry* it = row_begin(m); it != row_end(m); ++it) {
      dense.at(m, it->content) = it->rate;
    }
  }
  return dense;
}

SparseSlotDemand& SparseDemandTrace::slot(std::size_t t) {
  MDO_REQUIRE(t < slots_.size(), "SparseDemandTrace: slot out of range");
  return slots_[t];
}

const SparseSlotDemand& SparseDemandTrace::slot(std::size_t t) const {
  MDO_REQUIRE(t < slots_.size(), "SparseDemandTrace: slot out of range");
  return slots_[t];
}

void SparseDemandTrace::push_back(SparseSlotDemand slot) {
  slots_.push_back(std::move(slot));
}

SparseDemandTrace SparseDemandTrace::window(std::size_t begin,
                                            std::size_t length) const {
  SparseDemandTrace out;
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t t = begin + i;
    if (t >= slots_.size()) break;
    out.push_back(slots_[t]);
  }
  return out;
}

void SparseDemandTrace::validate(const NetworkConfig& config) const {
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    const SparseSlotDemand& slot = slots_[t];
    MDO_REQUIRE(slot.size() == config.num_sbs(),
                "SparseDemandTrace: slot SBS count mismatch");
    for (std::size_t n = 0; n < slot.size(); ++n) {
      const SparseSbsDemand& demand = slot[n];
      MDO_REQUIRE(demand.finalized(),
                  "SparseDemandTrace: demand block not finalized");
      MDO_REQUIRE(demand.num_classes() == config.sbs[n].num_classes(),
                  "SparseDemandTrace: class count mismatch");
      MDO_REQUIRE(demand.num_contents() == config.num_contents,
                  "SparseDemandTrace: content count mismatch");
      for (std::size_t m = 0; m < demand.num_classes(); ++m) {
        for (const DemandEntry* it = demand.row_begin(m);
             it != demand.row_end(m); ++it) {
          MDO_REQUIRE(std::isfinite(it->rate) && it->rate >= 0.0,
                      "SparseDemandTrace: rates must be finite and >= 0");
        }
      }
    }
  }
}

SparseDemandTrace SparseDemandTrace::from_dense(const DemandTrace& trace,
                                                double min_rate) {
  SparseDemandTrace out;
  for (std::size_t t = 0; t < trace.horizon(); ++t) {
    SparseSlotDemand slot;
    slot.reserve(trace.slot(t).size());
    for (const SbsDemand& demand : trace.slot(t)) {
      slot.push_back(SparseSbsDemand::from_dense(demand, min_rate));
    }
    out.push_back(std::move(slot));
  }
  return out;
}

DemandTrace SparseDemandTrace::to_dense() const {
  DemandTrace out;
  for (const SparseSlotDemand& slot : slots_) {
    SlotDemand dense;
    dense.reserve(slot.size());
    for (const SparseSbsDemand& demand : slot) dense.push_back(demand.to_dense());
    out.push_back(std::move(dense));
  }
  return out;
}

SparseSlotDemand make_zero_sparse_slot_demand(const NetworkConfig& config) {
  SparseSlotDemand slot;
  slot.reserve(config.num_sbs());
  for (std::size_t n = 0; n < config.num_sbs(); ++n) {
    SparseSbsDemand demand(config.sbs[n].num_classes(), config.num_contents);
    demand.finalize();
    slot.push_back(std::move(demand));
  }
  return slot;
}

std::vector<std::size_t> active_contents(const SparseSbsDemand& demand,
                                         const CacheState& cache,
                                         std::size_t n) {
  const std::vector<std::size_t>& sup = demand.support();
  std::vector<std::size_t> active;
  active.reserve(sup.size() + cache.count(n));
  std::size_t si = 0;
  for (std::size_t k = 0; k < demand.num_contents(); ++k) {
    const bool in_support = si < sup.size() && sup[si] == k;
    if (in_support) ++si;
    if (in_support || cache.cached(n, k)) active.push_back(k);
  }
  return active;
}

double sbs_load(const LoadAllocation& load, std::size_t n,
                SbsDemandView demand) {
  MDO_REQUIRE(demand.valid(), "sbs_load: empty demand view");
  if (!demand.is_sparse()) return load.sbs_load(n, *demand.dense());
  const SparseSbsDemand& sparse = *demand.sparse();
  const double* y = load.sbs_data(n).data();
  const std::size_t contents = sparse.num_contents();
  double total = 0.0;
  for (std::size_t m = 0; m < sparse.num_classes(); ++m) {
    for (const DemandEntry* it = sparse.row_begin(m); it != sparse.row_end(m);
         ++it) {
      total += y[m * contents + it->content] * it->rate;
    }
  }
  return total;
}

double neighbor_load(const LoadAllocation& load, std::size_t n,
                     SbsDemandView demand) {
  if (!load.has_neighbor()) return 0.0;
  MDO_REQUIRE(demand.valid(), "neighbor_load: empty demand view");
  if (!demand.is_sparse()) return load.neighbor_load(n, *demand.dense());
  const SparseSbsDemand& sparse = *demand.sparse();
  const double* z = load.neighbor_data(n).data();
  const std::size_t contents = sparse.num_contents();
  double total = 0.0;
  for (std::size_t m = 0; m < sparse.num_classes(); ++m) {
    for (const DemandEntry* it = sparse.row_begin(m); it != sparse.row_end(m);
         ++it) {
      total += z[m * contents + it->content] * it->rate;
    }
  }
  return total;
}

std::size_t SbsDemandView::num_classes() const {
  MDO_REQUIRE(valid(), "SbsDemandView: empty view");
  return is_sparse() ? sparse_->num_classes() : dense_->num_classes();
}

std::size_t SbsDemandView::num_contents() const {
  MDO_REQUIRE(valid(), "SbsDemandView: empty view");
  return is_sparse() ? sparse_->num_contents() : dense_->num_contents();
}

double SbsDemandView::at(std::size_t m, std::size_t k) const {
  MDO_REQUIRE(valid(), "SbsDemandView: empty view");
  return is_sparse() ? sparse_->at(m, k) : dense_->at(m, k);
}

double SbsDemandView::total() const {
  MDO_REQUIRE(valid(), "SbsDemandView: empty view");
  return is_sparse() ? sparse_->total() : dense_->total();
}

double SbsDemandView::content_total(std::size_t k) const {
  MDO_REQUIRE(valid(), "SbsDemandView: empty view");
  return is_sparse() ? sparse_->content_total(k) : dense_->content_total(k);
}

std::size_t SlotDemandView::num_sbs() const {
  MDO_REQUIRE(valid(), "SlotDemandView: empty view");
  return is_sparse() ? sparse_->size() : dense_->size();
}

SbsDemandView SlotDemandView::sbs(std::size_t n) const {
  MDO_REQUIRE(valid(), "SlotDemandView: empty view");
  if (is_sparse()) {
    MDO_REQUIRE(n < sparse_->size(), "SlotDemandView: SBS out of range");
    return SbsDemandView((*sparse_)[n]);
  }
  MDO_REQUIRE(n < dense_->size(), "SlotDemandView: SBS out of range");
  return SbsDemandView((*dense_)[n]);
}

SlotDemand SlotDemandView::to_dense() const {
  MDO_REQUIRE(valid(), "SlotDemandView: empty view");
  if (!is_sparse()) return *dense_;
  SlotDemand out;
  out.reserve(sparse_->size());
  for (const SparseSbsDemand& demand : *sparse_) out.push_back(demand.to_dense());
  return out;
}

std::size_t DemandTraceView::horizon() const {
  MDO_REQUIRE(valid(), "DemandTraceView: empty view");
  return is_sparse() ? sparse_->horizon() : dense_->horizon();
}

SlotDemandView DemandTraceView::slot(std::size_t t) const {
  MDO_REQUIRE(valid(), "DemandTraceView: empty view");
  if (is_sparse()) return SlotDemandView(sparse_->slot(t));
  return SlotDemandView(dense_->slot(t));
}

}  // namespace mdo::model
