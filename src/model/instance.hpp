// A complete problem instance: network + demand horizon + initial cache.
#pragma once

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"
#include "model/sparse_demand.hpp"

namespace mdo::model {

/// Everything the optimization problem (9)-(11) needs. The demand horizon
/// lives in exactly one of `demand` (dense) and `sparse_demand`, selected
/// by the `use_sparse_demand` A/B switch; `demand_view()` is the single
/// accessor consumers should use.
struct ProblemInstance {
  NetworkConfig config;
  DemandTrace demand;
  SparseDemandTrace sparse_demand;
  bool use_sparse_demand = false;
  CacheState initial_cache;  // x^0; all-empty in the paper's setup

  std::size_t horizon() const {
    return use_sparse_demand ? sparse_demand.horizon() : demand.horizon();
  }

  DemandTraceView demand_view() const {
    return use_sparse_demand ? DemandTraceView(sparse_demand)
                             : DemandTraceView(demand);
  }

  /// Validates config, demand shape, and that the initial cache respects
  /// capacities; throws InvalidArgument otherwise.
  void validate() const;
};

}  // namespace mdo::model
