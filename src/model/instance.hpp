// A complete problem instance: network + demand horizon + initial cache.
#pragma once

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"

namespace mdo::model {

/// Everything the optimization problem (9)-(11) needs.
struct ProblemInstance {
  NetworkConfig config;
  DemandTrace demand;
  CacheState initial_cache;  // x^0; all-empty in the paper's setup

  std::size_t horizon() const { return demand.horizon(); }

  /// Validates config, demand shape, and that the initial cache respects
  /// capacities; throws InvalidArgument otherwise.
  void validate() const;
};

}  // namespace mdo::model
