// Sparse demand representation (CSR per-class rows over the content axis).
//
// Zipf-distributed demand concentrates nearly all request mass on a small
// head of the catalogue, so the dense M x K matrices of SbsDemand waste
// memory bandwidth on structural zeros once K grows past a few hundred.
// SparseSbsDemand stores only the nonzero (class, content, rate) entries in
// CSR layout plus the sorted support and cached per-content column totals;
// the *View wrappers below let every consumer accept either representation
// behind one accessor. Conversions are lossless: to_dense(from_dense(d))
// reproduces d bitwise when min_rate == 0, and every accumulation (totals,
// column sums, loads, costs) visits entries in the same index order as the
// dense code, so skipping exact-zero terms leaves the results bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "model/decision.hpp"
#include "model/demand.hpp"
#include "model/network.hpp"
#include "util/error.hpp"

namespace mdo::model {

/// One stored nonzero of a demand row.
struct DemandEntry {
  std::size_t content = 0;
  double rate = 0.0;

  friend bool operator==(const DemandEntry&, const DemandEntry&) = default;
};

/// Request-rate matrix of one SBS in CSR layout: per-class rows of
/// (content, rate) entries sorted by content, plus the sorted support and
/// per-content totals computed once at finalize().
class SparseSbsDemand {
 public:
  SparseSbsDemand() = default;
  SparseSbsDemand(std::size_t num_classes, std::size_t num_contents);

  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_contents() const { return num_contents_; }
  std::size_t nnz() const { return entries_.size(); }

  /// Appends one entry. Entries must arrive in ascending (class, content)
  /// order; empty rows are skipped implicitly.
  void append(std::size_t m, std::size_t k, double rate);

  /// Seals the structure: closes trailing rows and computes the sorted
  /// support plus per-content totals. Must be called after the last
  /// append() and before any query; from_dense() does it automatically.
  void finalize();

  bool finalized() const { return finalized_; }

  /// Entries of class m as a [begin, end) pointer pair.
  const DemandEntry* row_begin(std::size_t m) const;
  const DemandEntry* row_end(std::size_t m) const;

  /// Stored rate at (m, k); 0.0 when the entry is absent.
  double at(std::size_t m, std::size_t k) const;

  /// Sum over stored entries in (class, content) order — bit-identical to
  /// SbsDemand::total() because the skipped dense terms are exact zeros.
  double total() const;

  /// Column sum for one content (0.0 off the support). O(log |support|).
  double content_total(std::size_t k) const;

  /// All K column sums in one pass; out is resized to num_contents().
  template <class Vector>
  void content_totals_into(Vector& out) const {
    MDO_REQUIRE(finalized_, "SparseSbsDemand: query before finalize");
    out.assign(num_contents_, 0.0);
    for (std::size_t i = 0; i < support_.size(); ++i) {
      out[support_[i]] = support_totals_[i];
    }
  }

  /// Sorted distinct contents with at least one stored entry.
  const std::vector<std::size_t>& support() const;

  /// Multiplies every stored rate by factor[content] and rebuilds the
  /// cached totals (the noisy predictor's per-content perturbation). The
  /// structure (rows, support) is unchanged; factor must have size
  /// num_contents(). Each scaled rate is the same product the dense code
  /// computes, so the result matches from_dense of the scaled dense matrix.
  void scale_by_content(const std::vector<double>& factor);

  /// Conversion from dense; entries with rate == 0 or rate < min_rate are
  /// dropped (become structural zeros). min_rate == 0 is lossless.
  static SparseSbsDemand from_dense(const SbsDemand& dense,
                                    double min_rate = 0.0);
  SbsDemand to_dense() const;

  friend bool operator==(const SparseSbsDemand&,
                         const SparseSbsDemand&) = default;

 private:
  std::size_t num_classes_ = 0;
  std::size_t num_contents_ = 0;
  std::vector<std::size_t> row_ptr_;     // row m spans [row_ptr_[m], [m+1])
  std::vector<DemandEntry> entries_;
  std::vector<std::size_t> support_;     // sorted distinct contents
  std::vector<double> support_totals_;   // parallel to support_
  bool finalized_ = false;
};

/// Demand of all SBSs in one slot, sparse counterpart of SlotDemand.
using SparseSlotDemand = std::vector<SparseSbsDemand>;

/// Sparse counterpart of DemandTrace.
class SparseDemandTrace {
 public:
  std::size_t horizon() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  SparseSlotDemand& slot(std::size_t t);
  const SparseSlotDemand& slot(std::size_t t) const;

  void push_back(SparseSlotDemand slot);

  /// Drops every slot; controllers reuse one trace buffer per window.
  void clear() { slots_.clear(); }

  /// Sub-trace [begin, begin + length), clamped to the horizon like
  /// DemandTrace::window.
  SparseDemandTrace window(std::size_t begin, std::size_t length) const;

  /// Checks shapes against the config and that every stored rate is finite
  /// and nonnegative (and every SBS block finalized).
  void validate(const NetworkConfig& config) const;

  static SparseDemandTrace from_dense(const DemandTrace& trace,
                                      double min_rate = 0.0);
  DemandTrace to_dense() const;

  friend bool operator==(const SparseDemandTrace&,
                         const SparseDemandTrace&) = default;

 private:
  std::vector<SparseSlotDemand> slots_;
};

/// All-zero sparse slot demand shaped like the config.
SparseSlotDemand make_zero_sparse_slot_demand(const NetworkConfig& config);

/// Active-set of one (slot, SBS) cell: sorted union of support(lambda) and
/// the contents cached at SBS n. P2's decision y[m,k] is structurally zero
/// off this set (no demand => nothing to serve; not cached => coupling (3)
/// forces y = 0), so the solvers restrict their variable space to it.
std::vector<std::size_t> active_contents(const SparseSbsDemand& demand,
                                         const CacheState& cache,
                                         std::size_t n);

class SbsDemandView;

/// load.sbs_load(n, demand) over either representation: the dense view
/// delegates to LoadAllocation::sbs_load verbatim; the sparse view iterates
/// stored entries in the same index order (skipped terms are exact zeros).
double sbs_load(const LoadAllocation& load, std::size_t n, SbsDemandView demand);

/// Neighbor-tier traffic of SBS n over either representation; 0.0 when the
/// load carries no neighbor bank.
double neighbor_load(const LoadAllocation& load, std::size_t n,
                     SbsDemandView demand);

/// Non-owning view over either demand representation of one SBS. The dense
/// accessors delegate verbatim so dense-mode behavior is unchanged.
class SbsDemandView {
 public:
  SbsDemandView() = default;
  /*implicit*/ SbsDemandView(const SbsDemand& dense) : dense_(&dense) {}
  /*implicit*/ SbsDemandView(const SparseSbsDemand& sparse)
      : sparse_(&sparse) {}

  bool valid() const { return dense_ != nullptr || sparse_ != nullptr; }
  bool is_sparse() const { return sparse_ != nullptr; }
  const SbsDemand* dense() const { return dense_; }
  const SparseSbsDemand* sparse() const { return sparse_; }

  std::size_t num_classes() const;
  std::size_t num_contents() const;
  double at(std::size_t m, std::size_t k) const;
  double total() const;
  double content_total(std::size_t k) const;
  template <class Vector>
  void content_totals_into(Vector& out) const {
    MDO_REQUIRE(valid(), "SbsDemandView: empty view");
    if (is_sparse()) {
      sparse_->content_totals_into(out);
    } else {
      dense_->content_totals_into(out);
    }
  }

 private:
  const SbsDemand* dense_ = nullptr;
  const SparseSbsDemand* sparse_ = nullptr;
};

/// Non-owning view over either slot-demand representation.
class SlotDemandView {
 public:
  SlotDemandView() = default;
  /*implicit*/ SlotDemandView(const SlotDemand& dense) : dense_(&dense) {}
  /*implicit*/ SlotDemandView(const SparseSlotDemand& sparse)
      : sparse_(&sparse) {}

  bool valid() const { return dense_ != nullptr || sparse_ != nullptr; }
  bool is_sparse() const { return sparse_ != nullptr; }
  const SlotDemand* dense() const { return dense_; }
  const SparseSlotDemand* sparse() const { return sparse_; }

  std::size_t num_sbs() const;
  SbsDemandView sbs(std::size_t n) const;

  /// Materializes a dense copy (used by the fault-injection observation
  /// path, which perturbs dense matrices).
  SlotDemand to_dense() const;

 private:
  const SlotDemand* dense_ = nullptr;
  const SparseSlotDemand* sparse_ = nullptr;
};

/// Non-owning view over either trace representation.
class DemandTraceView {
 public:
  DemandTraceView() = default;
  /*implicit*/ DemandTraceView(const DemandTrace& dense) : dense_(&dense) {}
  /*implicit*/ DemandTraceView(const SparseDemandTrace& sparse)
      : sparse_(&sparse) {}

  bool valid() const { return dense_ != nullptr || sparse_ != nullptr; }
  bool is_sparse() const { return sparse_ != nullptr; }
  const DemandTrace* dense() const { return dense_; }
  const SparseDemandTrace* sparse() const { return sparse_; }

  std::size_t horizon() const;
  SlotDemandView slot(std::size_t t) const;

 private:
  const DemandTrace* dense_ = nullptr;
  const SparseDemandTrace* sparse_ = nullptr;
};

}  // namespace mdo::model
