#include "model/decision.hpp"

#include "util/error.hpp"

namespace mdo::model {

CacheState::CacheState(const NetworkConfig& config)
    : num_contents_(config.num_contents) {
  x_.resize(config.num_sbs());
  for (auto& bitmap : x_) bitmap.assign(num_contents_, 0);
}

bool CacheState::cached(std::size_t n, std::size_t k) const {
  MDO_REQUIRE(n < x_.size() && k < num_contents_, "cache index out of range");
  return x_[n][k] != 0;
}

void CacheState::set(std::size_t n, std::size_t k, bool value) {
  MDO_REQUIRE(n < x_.size() && k < num_contents_, "cache index out of range");
  x_[n][k] = value ? 1 : 0;
}

std::size_t CacheState::count(std::size_t n) const {
  MDO_REQUIRE(n < x_.size(), "SBS index out of range");
  std::size_t total = 0;
  for (const auto v : x_[n]) total += v;
  return total;
}

std::size_t CacheState::insertions_from(const CacheState& prev,
                                        std::size_t n) const {
  MDO_REQUIRE(n < x_.size() && n < prev.x_.size(), "SBS index out of range");
  MDO_REQUIRE(num_contents_ == prev.num_contents_,
              "cache states have different catalogue sizes");
  std::size_t inserted = 0;
  for (std::size_t k = 0; k < num_contents_; ++k) {
    if (x_[n][k] != 0 && prev.x_[n][k] == 0) ++inserted;
  }
  return inserted;
}

const std::vector<std::uint8_t>& CacheState::sbs_bitmap(std::size_t n) const {
  MDO_REQUIRE(n < x_.size(), "SBS index out of range");
  return x_[n];
}

LoadAllocation::LoadAllocation(const NetworkConfig& config)
    : num_contents_(config.num_contents) {
  shape_classes_.reserve(config.num_sbs());
  y_.reserve(config.num_sbs());
  for (const auto& s : config.sbs) {
    shape_classes_.push_back(s.num_classes());
    y_.emplace_back(s.num_classes() * num_contents_, 0.0);
  }
}

std::size_t LoadAllocation::num_classes(std::size_t n) const {
  MDO_REQUIRE(n < shape_classes_.size(), "SBS index out of range");
  return shape_classes_[n];
}

double LoadAllocation::at(std::size_t n, std::size_t m, std::size_t k) const {
  MDO_REQUIRE(n < y_.size() && m < shape_classes_[n] && k < num_contents_,
              "load index out of range");
  return y_[n][m * num_contents_ + k];
}

double& LoadAllocation::at(std::size_t n, std::size_t m, std::size_t k) {
  MDO_REQUIRE(n < y_.size() && m < shape_classes_[n] && k < num_contents_,
              "load index out of range");
  return y_[n][m * num_contents_ + k];
}

double LoadAllocation::sbs_load(std::size_t n, const SbsDemand& demand) const {
  MDO_REQUIRE(n < y_.size(), "SBS index out of range");
  MDO_REQUIRE(demand.num_classes() == shape_classes_[n] &&
                  demand.num_contents() == num_contents_,
              "demand shape mismatch");
  return linalg::dot(y_[n], demand.data());
}

const linalg::Vec& LoadAllocation::sbs_data(std::size_t n) const {
  MDO_REQUIRE(n < y_.size(), "SBS index out of range");
  return y_[n];
}

linalg::Vec& LoadAllocation::sbs_data(std::size_t n) {
  MDO_REQUIRE(n < y_.size(), "SBS index out of range");
  return y_[n];
}

void LoadAllocation::ensure_neighbor() {
  if (!yn_.empty()) return;
  yn_.reserve(y_.size());
  for (const auto& row : y_) yn_.emplace_back(row.size(), 0.0);
}

double LoadAllocation::neighbor_at(std::size_t n, std::size_t m,
                                   std::size_t k) const {
  if (yn_.empty()) return 0.0;
  MDO_REQUIRE(n < yn_.size() && m < shape_classes_[n] && k < num_contents_,
              "neighbor load index out of range");
  return yn_[n][m * num_contents_ + k];
}

double& LoadAllocation::neighbor_at(std::size_t n, std::size_t m,
                                    std::size_t k) {
  MDO_REQUIRE(!yn_.empty(), "neighbor bank not allocated (ensure_neighbor)");
  MDO_REQUIRE(n < yn_.size() && m < shape_classes_[n] && k < num_contents_,
              "neighbor load index out of range");
  return yn_[n][m * num_contents_ + k];
}

double LoadAllocation::neighbor_load(std::size_t n,
                                     const SbsDemand& demand) const {
  if (yn_.empty()) return 0.0;
  MDO_REQUIRE(n < yn_.size(), "SBS index out of range");
  MDO_REQUIRE(demand.num_classes() == shape_classes_[n] &&
                  demand.num_contents() == num_contents_,
              "demand shape mismatch");
  return linalg::dot(yn_[n], demand.data());
}

const linalg::Vec& LoadAllocation::neighbor_data(std::size_t n) const {
  MDO_REQUIRE(!yn_.empty() && n < yn_.size(),
              "neighbor bank not allocated (ensure_neighbor)");
  return yn_[n];
}

linalg::Vec& LoadAllocation::neighbor_data(std::size_t n) {
  MDO_REQUIRE(!yn_.empty() && n < yn_.size(),
              "neighbor bank not allocated (ensure_neighbor)");
  return yn_[n];
}

}  // namespace mdo::model
