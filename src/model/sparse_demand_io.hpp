// Compact binary round-trip for the sparse demand representation.
//
// The long-CSV trace format (workload/trace) is human-readable but slow and
// lossy-prone at K=10^4 catalogues; these codecs serialize the CSR structure
// directly. Rates round-trip through their IEEE-754 bit pattern, and load()
// rebuilds each SBS block through append()/finalize(), so the cached support
// totals are recomputed by the exact summation the original finalize() ran —
// a loaded trace compares operator== equal to the saved one, bit for bit.
//
// Two layers:
//  - write_/read_ against Binary{Writer,Reader}: embeddable payload codecs,
//    shared by the shard wire format (src/shard/wire.cpp) and checkpoints.
//  - save_/load_sparse_trace: a framed file ("MDOSTRC1" magic, version,
//    payload size, FNV-1a checksum) written atomically; load throws
//    util::InvalidArgument on any corruption instead of restoring garbage.
#pragma once

#include <string>

#include "model/sparse_demand.hpp"
#include "util/serialize.hpp"

namespace mdo::model {

void write_sparse_demand(util::BinaryWriter& w, const SparseSbsDemand& demand);
SparseSbsDemand read_sparse_demand(util::BinaryReader& r);

void write_sparse_trace(util::BinaryWriter& w, const SparseDemandTrace& trace);
SparseDemandTrace read_sparse_trace(util::BinaryReader& r);

/// Atomically writes `trace` to `path` in the framed binary format.
void save_sparse_trace(const std::string& path, const SparseDemandTrace& trace);

/// Loads a trace written by save_sparse_trace; throws util::InvalidArgument
/// on bad magic, version, size, or checksum mismatch.
SparseDemandTrace load_sparse_trace(const std::string& path);

}  // namespace mdo::model
