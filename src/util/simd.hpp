// SIMD build-mode plumbing for the hot-path kernels.
//
// The determinism contract (DESIGN.md §12): every kernel must produce
// bit-identical results whether the build vectorizes or not. Two loop
// classes keep that guarantee:
//
//  * Map loops (no cross-iteration dependency) — `MDO_SIMD_LOOP` expands to
//    `#pragma omp simd` under MDO_SIMD=ON and to nothing otherwise. Each
//    element is an independent dataflow, so lane width cannot change any
//    result bit.
//  * Reductions — NEVER carry `MDO_SIMD_LOOP` and stay strictly serial in
//    ascending index order (see linalg/vec.cpp). Serial order is load-
//    bearing twice over: it makes both builds produce the same bits, and it
//    is what lets the sparse demand paths skip exact-zero terms of the
//    corresponding dense sums without changing the result (the repo-wide
//    sparse-vs-dense bitwise invariant, model/sparse_demand.hpp). Lane-split
//    accumulators would regroup the dense terms and break the latter.
//
// MDO_SIMD_ENABLED is defined by CMake (option MDO_SIMD, default ON, which
// also adds -fopenmp-simd so the pragma is honored without the OpenMP
// runtime).
#pragma once

#include <cassert>
#include <cstdint>

#if defined(MDO_SIMD_ENABLED)
#define MDO_SIMD_LOOP _Pragma("omp simd")
#else
#define MDO_SIMD_LOOP
#endif

namespace mdo::util {

/// Alignment guaranteed by linalg::AlignedAllocator; one cache line, wide
/// enough for any AVX-512 load.
inline constexpr std::size_t kVecAlignment = 64;

/// True when `ptr` honors the linalg buffer alignment. Debug builds assert
/// this at kernel entry for whole-vector operands (sub-spans into the
/// middle of a buffer are exempt — they are only required to be
/// element-aligned).
inline bool is_vec_aligned(const void* ptr) {
  return reinterpret_cast<std::uintptr_t>(ptr) % kVecAlignment == 0;
}

}  // namespace mdo::util

#ifndef NDEBUG
#define MDO_ASSERT_VEC_ALIGNED(ptr) assert(::mdo::util::is_vec_aligned(ptr))
#else
#define MDO_ASSERT_VEC_ALIGNED(ptr) ((void)0)
#endif
