#include "util/cli.hpp"

#include <charconv>

#include "util/error.hpp"

namespace mdo {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    MDO_REQUIRE(token.rfind("--", 0) == 0,
                "expected flag starting with --, got: " + token);
    token.erase(0, 2);
    const auto eq = token.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = token.substr(0, eq);
      value = token.substr(eq + 1);
    } else {
      key = token;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag => boolean true
      }
    }
    MDO_REQUIRE(!key.empty(), "empty flag name");
    values_[key] = value;
    consumed_[key] = false;
  }
}

bool CliFlags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::string CliFlags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  MDO_REQUIRE(ec == std::errc() && ptr == s.data() + s.size(),
              "flag --" + name + " expects an integer, got: " + s);
  return out;
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  try {
    std::size_t pos = 0;
    const double out = std::stod(it->second, &pos);
    MDO_REQUIRE(pos == it->second.size(),
                "flag --" + name + " expects a number, got: " + it->second);
    return out;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("flag --" + name + " expects a number, got: " +
                          it->second);
  }
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  const auto& s = it->second;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw InvalidArgument("flag --" + name + " expects a boolean, got: " + s);
}

void CliFlags::require_all_consumed() const {
  for (const auto& [key, used] : consumed_) {
    if (!used) throw InvalidArgument("unknown flag: --" + key);
  }
}

}  // namespace mdo
