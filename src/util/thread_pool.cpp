#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mdo::util {

namespace {

/// The pool a worker thread belongs to; null on external threads.
thread_local const ThreadPool* t_worker_pool = nullptr;

/// The pool this thread is currently running a parallel_for batch on (as
/// the submitting caller). A re-entrant parallel_for from inside a loop
/// body executed by the caller thread must run inline: re-acquiring the
/// non-recursive submit_mutex would self-deadlock.
thread_local const ThreadPool* t_submitting_pool = nullptr;

/// Restores t_submitting_pool on scope exit (including exceptions).
struct SubmitScope {
  explicit SubmitScope(const ThreadPool* pool) { t_submitting_pool = pool; }
  ~SubmitScope() { t_submitting_pool = nullptr; }
};

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

struct ThreadPool::State {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;   // workers wait for a new batch
  std::condition_variable done_cv;   // caller waits for batch completion
  bool stop = false;

  // One batch at a time; `submit_mutex` serializes external callers.
  std::mutex submit_mutex;
  std::uint64_t batch_id = 0;        // bumped per batch, under `mutex`
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t end = 0;
  std::atomic<std::size_t> next{0};
  std::size_t chunk = 1;
  std::size_t busy_workers = 0;      // workers still inside the batch

  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads)
    : num_threads_(threads < 1 ? 1 : threads), state_(new State) {
  state_->workers.reserve(num_threads_ - 1);
  for (std::size_t i = 0; i + 1 < num_threads_; ++i) {
    state_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& worker : state_->workers) worker.join();
  delete state_;
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::run_range(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t end = 0;
    std::size_t chunk = 1;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->work_cv.wait(lock, [&] {
        return state_->stop || state_->batch_id != seen_batch;
      });
      if (state_->stop) return;
      seen_batch = state_->batch_id;
      fn = state_->fn;
      // A worker that woke after its batch drained (the caller finished the
      // range alone, waited for busy_workers == 0, and cleared `fn`) must
      // not enter the chunk loop at all: its `end` would be stale, and a
      // subsequent batch resetting `next` could hand it bogus indices.
      if (fn == nullptr) continue;
      ++state_->busy_workers;
      end = state_->end;
      chunk = state_->chunk;
    }
    // While busy_workers > 0 the caller cannot return, so `fn`, `end`, and
    // the functor behind `fn` stay alive for the whole chunk loop.
    for (;;) {
      const std::size_t lo = state_->next.fetch_add(chunk);
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        run_range(lo, hi, *fn);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state_->error_mutex);
          if (!state_->error) state_->error = std::current_exception();
        }
        state_->next.store(end);  // cancel the rest of the batch
      }
    }
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      --state_->busy_workers;
    }
    state_->done_cv.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // Nested submission is rejected (it could deadlock a fixed pool): a
  // parallel_for issued from a worker of this pool, or re-entrantly from
  // the thread already driving a batch on this pool, runs the range inline.
  // Only the outermost level is parallel.
  if (num_threads_ <= 1 || on_worker_thread() || t_submitting_pool == this ||
      end - begin == 1) {
    run_range(begin, end, fn);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(state_->submit_mutex);
  const SubmitScope submit_scope(this);
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->fn = &fn;
    state_->end = end;
    state_->next.store(begin);
    // Chunks small enough to balance, large enough to amortize the atomic.
    state_->chunk =
        std::max<std::size_t>(1, (end - begin) / (4 * num_threads_));
    state_->error = nullptr;
    ++state_->batch_id;
  }
  state_->work_cv.notify_all();

  // The caller participates in its own batch.
  const std::size_t chunk = state_->chunk;
  for (;;) {
    const std::size_t lo = state_->next.fetch_add(chunk);
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    try {
      run_range(lo, hi, fn);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state_->error_mutex);
        if (!state_->error) state_->error = std::current_exception();
      }
      state_->next.store(end);  // cancel the rest of the batch
    }
  }
  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [&] { return state_->busy_workers == 0; });
    state_->fn = nullptr;
  }
  if (state_->error) std::rethrow_exception(state_->error);
}

std::size_t ThreadPool::configured_threads() {
#ifndef MDO_DEFAULT_THREADS
#define MDO_DEFAULT_THREADS 0
#endif
  std::size_t threads = MDO_DEFAULT_THREADS;
  if (const char* env = std::getenv("MDO_THREADS")) {
    char* parse_end = nullptr;
    const unsigned long parsed = std::strtoul(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0') {
      threads = static_cast<std::size_t>(parsed);
    }
  }
  if (threads == 0) threads = hardware_threads();
  return threads;
}

namespace {
std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(configured_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(
      threads == 0 ? configured_threads() : threads);
}

void ThreadPool::reset_global_after_fork() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  // Leak on purpose: the pool's threads died with the fork and joining them
  // would hang. The child is expected to _exit(), so the leak is invisible.
  (void)g_global_pool.release();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace mdo::util
