// Deterministic fixed-size thread pool for the per-SBS / per-slot solver
// fan-out and the replication sweeps.
//
// Design constraints (see DESIGN.md, "Parallel execution model"):
//  - No work stealing and no nested parallelism: parallel_for partitions a
//    plain index range, every index writes only its own pre-sized output
//    slot, and a parallel_for issued from inside a worker runs inline (a
//    fixed pool that re-enqueued from its own workers could deadlock, so
//    nested submission is rejected rather than queued).
//  - Bit-identical results at any thread count: callers never reduce inside
//    the loop body; they collect per-index values and reduce serially in
//    index order afterwards. With MDO_THREADS=1 no workers are spawned and
//    parallel_for degenerates to the plain serial loop.
//  - Exceptions propagate: the first exception thrown by any index is
//    rethrown on the calling thread after the batch drains.
//
// The pool size is picked once per process from the MDO_THREADS environment
// variable (0/unset = the compiled default MDO_DEFAULT_THREADS, which is 0 =
// hardware concurrency unless CMake -DMDO_THREADS=<n> overrode it). Benches
// and tests may swap the global pool with set_global_threads(); doing so
// while a parallel_for is in flight is undefined.
#pragma once

#include <cstddef>
#include <functional>

namespace mdo::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every batch);
  /// `threads` <= 1 spawns none and runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread (>= 1).
  std::size_t num_threads() const { return num_threads_; }

  /// True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  /// Invokes fn(i) for every i in [begin, end) and blocks until all are
  /// done. The first exception thrown by any invocation is rethrown here.
  /// Nested calls — from a worker of this pool, or re-entrantly from the
  /// thread already driving a batch on it — run the range inline instead of
  /// being enqueued.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Thread count resolved from the MDO_THREADS environment variable, the
  /// compiled default, and hardware concurrency (always >= 1).
  static std::size_t configured_threads();

  /// Process-wide pool, created on first use with configured_threads().
  static ThreadPool& global();

  /// Replaces the global pool (0 = configured_threads()). For benches and
  /// tests only; callers must ensure no batch is in flight.
  static void set_global_threads(std::size_t threads);

  /// Forgets the global pool WITHOUT joining it. Only meaningful in the
  /// child of a fork(): the parent's worker threads do not exist there, so
  /// joining (as set_global_threads would) blocks forever. The stale State
  /// is deliberately leaked; the next global() builds a fresh pool with
  /// configured_threads(). The child must leave via _exit() so the leak
  /// never reaches a destructor or LeakSanitizer.
  static void reset_global_after_fork();

 private:
  struct State;
  void worker_loop();
  void run_range(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

  std::size_t num_threads_ = 1;
  State* state_ = nullptr;  // owned; opaque to keep <thread> out of headers
};

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mdo::util
