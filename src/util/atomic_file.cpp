#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <ios>

#include "util/error.hpp"

namespace mdo::util {

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    MDO_REQUIRE(static_cast<bool>(file),
                "cannot open temporary file: " + tmp);
    if (!bytes.empty()) {
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    file.flush();
    if (!file) {
      std::remove(tmp.c_str());
      throw InvalidArgument("stream failure while writing " + tmp +
                            " (disk full?)");
    }
  }
  // Atomic within a directory on POSIX: a crash before this point leaves
  // the old file intact; after it, the new file is complete.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InvalidArgument("cannot rename " + tmp + " over " + path);
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  MDO_REQUIRE(static_cast<bool>(file), "cannot open file: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  MDO_REQUIRE(file.eof() || static_cast<bool>(file),
              "stream failure while reading " + path);
  return bytes;
}

}  // namespace mdo::util
