// Crash-consistent file replacement.
//
// Checkpoints must never leave a half-written snapshot where the previous
// good one used to be: a crash mid-write would then destroy both the new
// and the old state. write_file_atomic() therefore writes to a sibling
// temporary (`<path>.tmp`), flushes it, and only then renames it over the
// target — rename(2) within one directory is atomic on POSIX, so readers
// observe either the complete old file or the complete new file, never a
// torn mixture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdo::util {

/// Atomically replaces `path` with `bytes`. Throws InvalidArgument when the
/// temporary cannot be opened, written, flushed, or renamed; in every
/// failure case any previous file at `path` is left untouched.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Reads a whole file written by write_file_atomic. Throws InvalidArgument
/// when the file cannot be opened or a stream failure interrupts the read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace mdo::util
