#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace mdo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MDO_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MDO_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection-free bounded draw with rejection fallback to
  // remove modulo bias.
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box–Muller; draws two uniforms each call.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  MDO_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  MDO_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  MDO_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload magnitudes used in the simulator.
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  MDO_REQUIRE(!weights.empty(), "categorical requires at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    MDO_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MDO_REQUIRE(total > 0.0, "categorical weights must have positive sum");
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numerical slack: return last bucket
}

Rng Rng::fork() { return Rng((*this)()); }

void Rng::set_state(const State& state) {
  bool all_zero = true;
  for (const auto word : state.words) all_zero = all_zero && word == 0;
  MDO_REQUIRE(!all_zero, "xoshiro256** state must not be all-zero");
  state_ = state.words;
}

Rng::Rng(const State& state) { set_state(state); }

}  // namespace mdo
