// FNV-1a 64-bit checksum.
//
// Guards checkpoint payloads against torn writes and bit rot. FNV-1a is not
// cryptographic — the threat model is accidental corruption (partial write,
// disk error), not an adversary — and its single-pass byte loop keeps the
// checkpoint hot path allocation- and dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mdo::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(const std::uint8_t* bytes, std::size_t size,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

inline std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes,
                             std::uint64_t seed = kFnvOffsetBasis) {
  return fnv1a64(bytes.data(), bytes.size(), seed);
}

}  // namespace mdo::util
