// Binary serialization primitives for checkpointing.
//
// Checkpoint payloads (runtime/checkpoint.hpp) must restore *bit-identical*
// state: a resumed run has to reproduce the uninterrupted trajectory exactly.
// Doubles therefore round-trip through their IEEE-754 bit pattern (bit_cast),
// never through text formatting, and all integers are written as fixed-width
// little-endian so snapshots are portable across hosts.
//
// BinaryReader is adversarial by construction: every read bounds-checks the
// buffer and throws util-level errors on truncation, so a torn or corrupted
// snapshot is rejected instead of silently restoring garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mdo::util {

/// Appends fixed-width little-endian values to a byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

  void size(std::size_t value) { u64(static_cast<std::uint64_t>(value)); }

  void boolean(bool value) { u8(value ? 1 : 0); }

  /// Exact IEEE-754 bit pattern; NaN payloads and signed zeros round-trip.
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  void str(const std::string& value) {
    size(value.size());
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }

  template <class Alloc>
  void f64_vec(const std::vector<double, Alloc>& values) {
    size(values.size());
    for (const double v : values) f64(v);
  }

  void size_vec(const std::vector<std::size_t>& values) {
    size(values.size());
    for (const std::size_t v : values) size(v);
  }

  void u8_vec(const std::vector<std::uint8_t>& values) {
    size(values.size());
    bytes_.insert(bytes_.end(), values.begin(), values.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads values written by BinaryWriter; throws InvalidArgument on any
/// attempt to read past the end of the buffer (truncated snapshot).
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  BinaryReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(bytes_[pos_++]) << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(bytes_[pos_++]) << shift;
    }
    return value;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// A scalar std::size_t VALUE (a dimension, an id, a counter). No bound
  /// against the payload: a 66-byte warm-start blob legitimately stores
  /// num_contents = 10^4. Use count() for element counts that gate reads
  /// or allocations.
  std::size_t size() { return static_cast<std::size_t>(u64()); }

  /// An element COUNT for data that follows in this payload. Every element
  /// occupies at least one byte, so a count exceeding the remaining bytes
  /// is corruption — rejecting it here bounds allocations before they
  /// happen.
  std::size_t count() {
    const std::uint64_t value = u64();
    MDO_REQUIRE(value <= static_cast<std::uint64_t>(size_ - pos_),
                "snapshot declares more elements than the payload holds");
    return static_cast<std::size_t>(value);
  }

  bool boolean() {
    const std::uint8_t value = u8();
    MDO_REQUIRE(value <= 1, "snapshot boolean field is not 0/1");
    return value != 0;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::size_t n = count();
    need(n);
    std::string value(reinterpret_cast<const char*>(bytes_ + pos_), n);
    pos_ += n;
    return value;
  }

  std::vector<double> f64_vec() { return f64_vec_as<std::vector<double>>(); }

  /// f64_vec into any double container with resize()/operator[] — used to
  /// restore directly into linalg::Vec (aligned allocator) without a copy.
  /// count()-guarded like every other element read.
  template <class Vector>
  Vector f64_vec_as() {
    const std::size_t n = count();
    need(n * 8);  // n <= remaining bytes, so n * 8 cannot overflow
    Vector values;
    values.resize(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = f64();
    return values;
  }

  std::vector<std::size_t> size_vec() {
    const std::size_t n = count();
    need(n * 8);
    std::vector<std::size_t> values(n);
    for (auto& v : values) v = size();
    return values;
  }

  std::vector<std::uint8_t> u8_vec() {
    const std::size_t n = count();
    need(n);
    std::vector<std::uint8_t> values(bytes_ + pos_, bytes_ + pos_ + n);
    pos_ += n;
    return values;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void need(std::size_t count) const {
    MDO_REQUIRE(count <= size_ - pos_,
                "snapshot truncated: read past end of payload");
  }

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Implemented by components whose cross-slot state must survive a process
/// restart (controllers, planners, solvers). The contract: after
/// `b.restore_state(r)` where `r` reads bytes produced by
/// `a.save_state(w)`, `b` must behave bit-identically to `a` on every
/// subsequent call — including warm-start and scratch state that only
/// affects results indirectly.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void save_state(BinaryWriter& w) const = 0;
  virtual void restore_state(BinaryReader& r) = 0;
};

}  // namespace mdo::util
