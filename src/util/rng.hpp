// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (workload draws, prediction
// noise, tie-breaking) pulls randomness from an explicitly seeded Rng so
// that each experiment in EXPERIMENTS.md is bit-for-bit reproducible.
// The generator is xoshiro256**, seeded via splitmix64 per the authors'
// recommendation; it is small, fast, and has no global state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mdo {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, although the built-in helpers below are preferred for
/// reproducibility across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single value (default seed 42).
  explicit Rng(std::uint64_t seed = 42);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Poisson draw with the given mean (Knuth for small, normal approx large).
  std::int64_t poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel components).
  Rng fork();

  /// Complete serializable stream state. normal() deliberately caches no
  /// Box–Muller spare, so the four engine words below are the *entire*
  /// stream state by construction: restoring them resumes the sequence
  /// exactly, even mid-way through paired-draw distributions. (A cached
  /// spare would have to be part of this struct; keeping normal()
  /// spare-free is what makes save/restore this simple and is a frozen
  /// contract — see the determinism regression tests.)
  struct State {
    std::array<std::uint64_t, 4> words{};
  };

  /// Snapshot of the current stream position.
  State state() const { return State{state_}; }

  /// Resumes a previously saved stream position. Rejects the all-zero
  /// state, which is invalid for xoshiro256** (the generator would emit
  /// zeros forever).
  void set_state(const State& state);

  /// Constructs directly at a saved stream position.
  explicit Rng(const State& state);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mdo
