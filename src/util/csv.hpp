// CSV emission for experiment outputs.
//
// Every bench binary writes its series both as a human-readable table (see
// table.hpp) and as CSV so figures can be re-plotted with any external tool.
#pragma once

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace mdo {

/// A CSV cell: string, integer, or floating point. Doubles are emitted in
/// their shortest round-trip form (std::to_chars): parsing the cell back
/// recovers the exact bits, and the writer never mutates the stream's
/// formatting state.
using CsvCell = std::variant<std::string, std::int64_t, double>;

/// Row-oriented CSV writer with RFC-4180 style quoting.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os);

  /// Writes the header row. Must be called at most once, before any row.
  void header(const std::vector<std::string>& columns);

  /// Writes one data row. If a header was written, the width must match.
  void row(const std::vector<CsvCell>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  void write_cell(const CsvCell& cell);

  std::ostream& os_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Quotes a string for CSV if needed (commas, quotes, newlines).
std::string csv_escape(const std::string& field);

}  // namespace mdo
