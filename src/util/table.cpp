#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace mdo {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  MDO_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MDO_REQUIRE(cells.size() == columns_.size(),
              "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt(std::int64_t value) { return std::to_string(value); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mdo
