#include "util/logging.hpp"

#include <atomic>
#include <mutex>

#include "util/error.hpp"

namespace mdo {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  // Serialize whole lines: solver fan-out (util::ThreadPool) may log from
  // several workers at once.
  static std::mutex write_mutex;
  std::ostream& os = static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn)
                         ? std::cerr
                         : std::clog;
  const std::lock_guard<std::mutex> lock(write_mutex);
  os << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace mdo
