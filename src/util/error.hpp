// Error handling primitives used across the library.
//
// Following the C++ Core Guidelines (E.2, I.10) we report errors that the
// immediate caller cannot handle via exceptions derived from a common root,
// and we verify internal invariants with MDO_CHECK/MDO_ASSERT which throw
// (rather than abort) so tests can exercise failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mdo {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied arguments that violate a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or detected an inconsistent model
/// (e.g. an infeasible or unbounded linear program).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a bug in the library.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "MDO_REQUIRE") throw InvalidArgument(os.str());
  throw LogicError(os.str());
}
}  // namespace detail

}  // namespace mdo

/// Precondition check: throws mdo::InvalidArgument when violated.
#define MDO_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mdo::detail::throw_check_failure("MDO_REQUIRE", #expr, __FILE__,    \
                                         __LINE__, (msg));                  \
  } while (0)

/// Internal invariant check: throws mdo::LogicError when violated.
#define MDO_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mdo::detail::throw_check_failure("MDO_CHECK", #expr, __FILE__,      \
                                         __LINE__, (msg));                  \
  } while (0)
