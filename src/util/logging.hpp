// Minimal leveled logging.
//
// The simulator and solvers emit progress/diagnostics through this logger so
// that benches can run quietly by default and tests can raise verbosity when
// debugging. No global mutable state other than the process-wide level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mdo {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Converts "trace|debug|info|warn|error|off" to a level (case-sensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

}  // namespace mdo

#define MDO_LOG(level, expr)                                     \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::mdo::log_level())) {                  \
      std::ostringstream mdo_log_os;                             \
      mdo_log_os << expr;                                        \
      ::mdo::detail::log_write((level), mdo_log_os.str());       \
    }                                                            \
  } while (0)

#define MDO_TRACE(expr) MDO_LOG(::mdo::LogLevel::kTrace, expr)
#define MDO_DEBUG(expr) MDO_LOG(::mdo::LogLevel::kDebug, expr)
#define MDO_INFO(expr) MDO_LOG(::mdo::LogLevel::kInfo, expr)
#define MDO_WARN(expr) MDO_LOG(::mdo::LogLevel::kWarn, expr)
#define MDO_ERROR(expr) MDO_LOG(::mdo::LogLevel::kError, expr)
