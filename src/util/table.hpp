// Fixed-width console tables.
//
// The bench harnesses print the paper's tables/series as aligned text so a
// reader can compare shapes against the paper without plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mdo {

/// Accumulates rows of strings and renders them column-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  /// Adds a data row; width must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::int64_t value);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdo
