#include "util/csv.hpp"

#include <array>
#include <charconv>
#include <system_error>

#include "util/error.hpp"

namespace mdo {

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  MDO_REQUIRE(!header_written_, "CSV header already written");
  MDO_REQUIRE(rows_ == 0, "CSV header must precede data rows");
  MDO_REQUIRE(!columns.empty(), "CSV header must have at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(columns[i]);
  }
  os_ << '\n';
  columns_ = columns.size();
  header_written_ = true;
}

void CsvWriter::write_cell(const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os_ << csv_escape(*s);
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    os_ << *i;
  } else {
    // Shortest representation that parses back to the exact same double
    // (to_chars round-trip guarantee). Deliberately NOT `os_ <<
    // setprecision(12) << value`: 12 digits lose bits (doubles need up to
    // 17), and the manipulator would persistently change the caller's
    // stream — every later float printed through the same stream, by
    // anyone, would silently inherit the truncated precision.
    const double value = std::get<double>(cell);
    std::array<char, 32> buffer;
    const auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
    MDO_REQUIRE(ec == std::errc{}, "CSV double formatting failed");
    os_.write(buffer.data(), ptr - buffer.data());
  }
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  MDO_REQUIRE(!cells.empty(), "CSV row must have at least one cell");
  if (header_written_) {
    MDO_REQUIRE(cells.size() == columns_, "CSV row width must match header");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    write_cell(cells[i]);
  }
  os_ << '\n';
  ++rows_;
}

}  // namespace mdo
