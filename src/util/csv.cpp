#include "util/csv.hpp"

#include <iomanip>

#include "util/error.hpp"

namespace mdo {

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  MDO_REQUIRE(!header_written_, "CSV header already written");
  MDO_REQUIRE(rows_ == 0, "CSV header must precede data rows");
  MDO_REQUIRE(!columns.empty(), "CSV header must have at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(columns[i]);
  }
  os_ << '\n';
  columns_ = columns.size();
  header_written_ = true;
}

void CsvWriter::write_cell(const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os_ << csv_escape(*s);
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    os_ << *i;
  } else {
    os_ << std::setprecision(12) << std::get<double>(cell);
  }
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  MDO_REQUIRE(!cells.empty(), "CSV row must have at least one cell");
  if (header_written_) {
    MDO_REQUIRE(cells.size() == columns_, "CSV row width must match header");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    write_cell(cells[i]);
  }
  os_ << '\n';
  ++rows_;
}

}  // namespace mdo
