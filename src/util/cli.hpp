// Tiny command-line flag parser for examples and benches.
//
// Supports `--name value` and `--name=value`; unknown flags raise
// InvalidArgument so typos surface instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mdo {

/// Parses `--key value` / `--key=value` style arguments.
class CliFlags {
 public:
  /// Parses argv (excluding argv[0]); throws InvalidArgument on malformed
  /// input (non-flag tokens, missing values).
  CliFlags(int argc, const char* const* argv);

  /// Typed lookups returning the default when the flag is absent.
  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  /// Flags looked up so far; used by require_all_consumed().
  /// Throws InvalidArgument if any provided flag was never queried, which
  /// catches misspelled flag names in scripts.
  void require_all_consumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace mdo
