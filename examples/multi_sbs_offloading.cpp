// Heterogeneous multi-SBS offloading.
//
// The paper's model covers N SBSs with disjoint coverage; its simulations
// use N = 1 and note that "when consider multiple SBSs, the final results
// are the sum of each SBS" — i.e. the problem decomposes per SBS. This
// example builds a 4-SBS cell with heterogeneous cache sizes, bandwidths
// and replacement prices, runs the offline optimum and RHC, and then
// *verifies the decomposition claim numerically*: solving each SBS's
// sub-network in isolation produces the same total cost as the joint solve.
//
//   ./multi_sbs_offloading [--slots N] [--seed S]
#include <iostream>

#include "online/offline_controller.hpp"
#include "online/rhc.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/predictor.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace mdo;

/// Extracts SBS n of an instance as a standalone single-SBS instance.
model::ProblemInstance isolate_sbs(const model::ProblemInstance& instance,
                                   std::size_t n) {
  model::ProblemInstance sub;
  sub.config.num_contents = instance.config.num_contents;
  sub.config.sbs.push_back(instance.config.sbs[n]);
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    sub.demand.push_back({instance.demand.slot(t)[n]});
  }
  sub.initial_cache = model::CacheState(sub.config);
  for (std::size_t k = 0; k < sub.config.num_contents; ++k) {
    sub.initial_cache.set(0, k, instance.initial_cache.cached(n, k));
  }
  return sub;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const auto slots = static_cast<std::size_t>(flags.get_int("slots", 24));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
    flags.require_all_consumed();

    // Four heterogeneous SBSs: a big urban picocell down to a small
    // femtocell, all sharing the BS catalogue.
    workload::PaperScenario scenario;
    scenario.num_sbs = 4;
    scenario.num_contents = 20;
    scenario.classes_per_sbs = 10;
    scenario.horizon = slots;
    scenario.seed = seed;
    scenario.workload.density_max = 5.0;  // busier cell: caching pays off
    auto instance = scenario.build();
    const std::size_t capacities[] = {8, 5, 3, 2};
    const double bandwidths[] = {18.0, 12.0, 7.0, 4.0};
    const double betas[] = {30.0, 60.0, 90.0, 120.0};
    for (std::size_t n = 0; n < 4; ++n) {
      instance.config.sbs[n].cache_capacity = capacities[n];
      instance.config.sbs[n].bandwidth = bandwidths[n];
      instance.config.sbs[n].replacement_beta = betas[n];
    }
    instance.validate();

    std::cout << "Multi-SBS offloading: 4 heterogeneous SBSs, K="
              << scenario.num_contents << ", T=" << slots << "\n\n";

    const workload::NoisyPredictor predictor(instance.demand, 0.1, 4242);
    const sim::Simulator simulator(instance, predictor);

    online::OfflineController offline;
    online::RhcController rhc(8);
    TextTable table({"scheme", "total cost", "#repl", "offload %"});
    for (online::Controller* controller :
         std::initializer_list<online::Controller*>{&offline, &rhc}) {
      const auto result = simulator.run(*controller);
      table.add_row({result.controller, TextTable::fmt(result.total_cost()),
                     TextTable::fmt(static_cast<std::int64_t>(
                         result.total_replacements)),
                     TextTable::fmt(100.0 * result.offload_ratio(), 1)});
    }
    table.print(std::cout);

    // ---- Decomposition check: per-SBS solves sum to the joint solve.
    std::cout << "\nPer-SBS decomposition (offline optimum):\n";
    online::OfflineController joint;
    const auto joint_result = simulator.run(joint);
    double decomposed_total = 0.0;
    TextTable per_sbs({"SBS", "C", "B", "beta", "isolated cost"});
    for (std::size_t n = 0; n < 4; ++n) {
      const auto sub = isolate_sbs(instance, n);
      const workload::NoisyPredictor sub_predictor(sub.demand, 0.1, 4242);
      const sim::Simulator sub_simulator(sub, sub_predictor);
      online::OfflineController sub_offline;
      const auto sub_result = sub_simulator.run(sub_offline);
      decomposed_total += sub_result.total_cost();
      per_sbs.add_row({TextTable::fmt(static_cast<std::int64_t>(n)),
                       TextTable::fmt(static_cast<std::int64_t>(capacities[n])),
                       TextTable::fmt(bandwidths[n], 0),
                       TextTable::fmt(betas[n], 0),
                       TextTable::fmt(sub_result.total_cost())});
    }
    per_sbs.print(std::cout);
    std::cout << "sum of isolated solves: " << decomposed_total
              << "\njoint solve:            " << joint_result.total_cost()
              << "\nrelative difference:    "
              << std::abs(decomposed_total - joint_result.total_cost()) /
                     joint_result.total_cost()
              << " (the model decomposes per SBS; small solver noise only)\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
