// Overlapping-coverage cell (the extension the paper sketches in Sec. II-A).
//
// A corridor of 3 SBSs whose coverage areas overlap: edge classes reach one
// SBS, middle classes reach two. The example runs the overlap primal-dual
// solver over a short horizon and compares it against (a) caching nothing
// and (b) a greedy top-C heuristic with the same optimal load balancing,
// demonstrating the value of jointly planning cache contents across
// overlapping neighbors.
//
//   ./overlap_cell [--slots N] [--contents K] [--seed S]
#include <iostream>

#include "overlap/primal_dual.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/zipf.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  using namespace mdo::overlap;
  try {
    const CliFlags flags(argc, argv);
    const auto slots = static_cast<std::size_t>(flags.get_int("slots", 6));
    const auto contents =
        static_cast<std::size_t>(flags.get_int("contents", 8));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
    flags.require_all_consumed();

    // Corridor: SBS 0 -- SBS 1 -- SBS 2. Five classes: 0 (left edge),
    // 1 (left overlap), 2 (center), 3 (right overlap), 4 (right edge).
    OverlapConfig config;
    config.num_contents = contents;
    config.sbs.assign(3, SbsParams{.cache_capacity = 2, .bandwidth = 3.0,
                                   .replacement_beta = 4.0});
    config.classes = {
        {.omega_bs = 0.9, .neighbors = {0}, .omega_sbs = {0.0}},
        {.omega_bs = 0.8, .neighbors = {0, 1}, .omega_sbs = {0.0, 0.0}},
        {.omega_bs = 1.0, .neighbors = {1}, .omega_sbs = {0.0}},
        {.omega_bs = 0.7, .neighbors = {1, 2}, .omega_sbs = {0.0, 0.0}},
        {.omega_bs = 0.6, .neighbors = {2}, .omega_sbs = {0.0}},
    };
    config.validate();
    const OverlapLayout layout(config);

    // Zipf-popular contents, per-class per-slot densities.
    Rng rng(seed);
    const auto pmf = workload::zipf_mandelbrot_pmf(contents, 0.8, 5.0);
    OverlapHorizonProblem problem;
    problem.config = &config;
    problem.layout = &layout;
    for (std::size_t t = 0; t < slots; ++t) {
      ClassDemand demand(config.num_classes(), contents);
      for (std::size_t m = 0; m < config.num_classes(); ++m) {
        const double density = rng.uniform(1.0, 4.0);
        for (std::size_t k = 0; k < contents; ++k) {
          demand.at(m, k) = density * pmf[k] * rng.uniform(0.8, 1.2);
        }
      }
      problem.demand.push_back(std::move(demand));
    }
    problem.initial = empty_cache(config);

    std::cout << "Overlap cell: 3 SBSs in a corridor, 5 classes (2 in "
                 "overlap zones), K=" << contents << ", T=" << slots
              << "\n\n";

    // (a) no caching at all.
    std::vector<OverlapDecision> idle(slots);
    for (std::size_t t = 0; t < slots; ++t) {
      idle[t].cache = empty_cache(config);
      idle[t].y.assign(layout.y_size(), 0.0);
    }
    const double no_cache_cost = schedule_cost(config, layout, problem.demand,
                                               idle, problem.initial);

    // (b) greedy: each SBS caches the top-C contents of its reachable
    // demand (slot 0), held static; load balancing solved optimally.
    std::vector<OverlapDecision> greedy(slots);
    {
      OverlapCache cache = empty_cache(config);
      for (std::size_t n = 0; n < config.num_sbs(); ++n) {
        std::vector<std::pair<double, std::size_t>> scored(contents);
        for (std::size_t k = 0; k < contents; ++k) {
          double volume = 0.0;
          for (const std::size_t id : layout.links_of_sbs(n)) {
            volume += problem.demand[0].at(layout.link(id).first, k);
          }
          scored[k] = {volume, k};
        }
        std::sort(scored.rbegin(), scored.rend());
        for (std::size_t i = 0; i < config.sbs[n].cache_capacity; ++i) {
          cache[n][scored[i].second] = 1;
        }
      }
      for (std::size_t t = 0; t < slots; ++t) {
        greedy[t].cache = cache;
        OverlapP2Problem p2;
        p2.config = &config;
        p2.layout = &layout;
        p2.demand = &problem.demand[t];
        p2.upper.assign(layout.y_size(), 0.0);
        for (std::size_t id = 0; id < layout.num_links(); ++id) {
          const auto [m, n] = layout.link(id);
          (void)m;
          for (std::size_t k = 0; k < contents; ++k) {
            if (cache[n][k]) p2.upper[layout.index(id, k)] = 1.0;
          }
        }
        greedy[t].y = solve_overlap_load_balancing(p2).y;
      }
    }
    const double greedy_cost = schedule_cost(config, layout, problem.demand,
                                             greedy, problem.initial);

    // (c) the joint overlap primal-dual plan.
    OverlapPrimalDualOptions options;
    options.max_iterations = 30;
    const auto solution = OverlapPrimalDualSolver(options).solve(problem);

    TextTable table({"scheme", "total cost", "vs no-cache"});
    table.add_row({"no caching", TextTable::fmt(no_cache_cost),
                   TextTable::fmt(1.0, 3)});
    table.add_row({"greedy top-C + optimal LB", TextTable::fmt(greedy_cost),
                   TextTable::fmt(greedy_cost / no_cache_cost, 3)});
    table.add_row({"overlap primal-dual", TextTable::fmt(solution.upper_bound),
                   TextTable::fmt(solution.upper_bound / no_cache_cost, 3)});
    table.print(std::cout);
    std::cout << "\nprimal-dual certified lower bound: "
              << solution.lower_bound << " (gap "
              << 100.0 * solution.gap() << "%)\n";

    // Show the planned caches of the middle SBS over time.
    std::cout << "\nSBS 1 (center, both overlap zones) cache plan:\n";
    for (std::size_t t = 0; t < slots; ++t) {
      std::cout << "  t=" << t << ": {";
      bool first = true;
      for (std::size_t k = 0; k < contents; ++k) {
        if (solution.schedule[t].cache[1][k]) {
          std::cout << (first ? "" : ", ") << k;
          first = false;
        }
      }
      std::cout << "}\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
