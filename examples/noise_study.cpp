// Prediction-noise study with multi-seed replication.
//
// A compact version of Fig. 5 that demonstrates the replication API: every
// eta point is run over several scenario seeds and the mean +/- stddev of
// the total cost is reported per scheme, showing at which noise level the
// online algorithms lose their edge over the clairvoyant LRFU baseline.
//
//   ./noise_study [--slots N] [--seeds R] [--window W]
#include <iostream>

#include "sim/replication.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  try {
    const CliFlags flags(argc, argv);
    sim::ExperimentConfig config;
    config.scenario.horizon =
        static_cast<std::size_t>(flags.get_int("slots", 24));
    config.scenario.num_contents = 20;
    config.scenario.classes_per_sbs = 15;
    config.scenario.cache_capacity = 4;
    config.scenario.bandwidth = 15.0;
    config.scenario.beta = 40.0;
    config.window = static_cast<std::size_t>(flags.get_int("window", 6));
    config.commit = 3;
    const auto replications =
        static_cast<std::size_t>(flags.get_int("seeds", 3));
    flags.require_all_consumed();

    std::cout << "Prediction-noise study: T=" << config.scenario.horizon
              << ", w=" << config.window << ", " << replications
              << " seeds per point\n\n";

    TextTable table({"eta", "scheme", "mean cost", "stddev", "mean #repl"});
    for (const double eta : {0.0, 0.15, 0.3, 0.45}) {
      config.eta = eta;
      const auto aggregated = sim::run_replicated(config, replications);
      for (const auto& outcome : aggregated) {
        table.add_row({TextTable::fmt(eta, 2), outcome.name,
                       TextTable::fmt(outcome.mean_total_cost),
                       TextTable::fmt(outcome.stddev_total_cost),
                       TextTable::fmt(outcome.mean_replacements, 1)});
      }
    }
    table.print(std::cout);

    std::cout << "\nReading: Offline and LRFU are eta-independent (they see "
                 "the truth); the online schemes degrade as eta grows —\n"
                 "compare each eta block against the paper's Fig. 5.\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
