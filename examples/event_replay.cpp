// Event replay: stream a demand trace from disk slot by slot, drive an
// online controller over it, and replay every slot at request level.
//
// The fluid model scores a decision against slot-mean rates; the event
// layer samples the actual Poisson request arrivals those rates describe,
// plays each request against the rounded cache placement and the queueing
// stations, and reports what an operator would measure: cache-hit ratio,
// access-delay percentiles, backhaul traffic, and the empirical cost. The
// trace is never materialized — only the controller's lookahead window is
// resident, so the same loop handles arbitrarily long traces.
//
//   ./event_replay [--slots N] [--contents K] [--classes M] [--beta B]
//                  [--window W] [--scale S] [--seed S] [--trace PATH]
#include <cstdio>
#include <iostream>

#include "online/rhc.hpp"
#include "sim/streaming_run.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"
#include "workload/streaming.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  try {
    const CliFlags flags(argc, argv);
    workload::PaperScenario scenario;
    scenario.horizon = static_cast<std::size_t>(flags.get_int("slots", 40));
    scenario.num_contents =
        static_cast<std::size_t>(flags.get_int("contents", 20));
    scenario.classes_per_sbs =
        static_cast<std::size_t>(flags.get_int("classes", 15));
    scenario.beta = flags.get_double("beta", 50.0);
    scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    const auto window = static_cast<std::size_t>(flags.get_int("window", 6));
    const double scale = flags.get_double("scale", 100.0);
    const std::string trace_path =
        flags.get_string("trace", "/tmp/mdo_event_replay_trace.csv");
    flags.require_all_consumed();

    // Stand-in for an externally recorded workload: generate a trace and
    // write it to disk. Any CSV in the save_trace_csv format works here.
    const model::ProblemInstance instance = scenario.build_sparse();
    workload::save_trace_csv(trace_path, instance.sparse_demand);
    std::cout << "wrote demand trace (" << instance.horizon() << " slots) to "
              << trace_path << "\n\n";

    // Stream it back: the reader yields one slot per pull, the driver keeps
    // only `window` slots buffered for RHC's lookahead.
    workload::StreamingTraceReader reader(trace_path, instance.config);
    sim::StreamingRunOptions options;
    options.lookahead = window;
    options.simulate_events = true;
    options.event_options.requests_per_rate_unit = scale;
    online::RhcController controller(window);
    const auto result =
        sim::run_streaming(instance.config, reader, controller, options);
    const auto& events = *result.events;

    std::cout << "RHC(w=" << window << ") over " << result.slots
              << " streamed slots, " << events.requests
              << " simulated requests (S=" << scale << ")\n\n";

    TextTable summary({"metric", "value"});
    summary.add_row({"cache-hit ratio", TextTable::fmt(events.hit_ratio(), 4)});
    summary.add_row({"mean access delay", TextTable::fmt(events.mean_delay(), 6)});
    summary.add_row({"p50 access delay", TextTable::fmt(events.p50_delay(), 6)});
    summary.add_row({"p99 access delay", TextTable::fmt(events.p99_delay(), 6)});
    summary.add_row({"backhaul bytes", TextTable::fmt(events.backhaul_bytes)});
    summary.add_row({"offload ratio", TextTable::fmt(result.offload_ratio(), 4)});
    summary.add_row({"fluid cost", TextTable::fmt(result.total_cost())});
    summary.add_row({"empirical cost", TextTable::fmt(
        events.discrete_cost.total())});
    summary.print(std::cout);

    const double fluid_op = result.total.bs + result.total.sbs;
    const double event_op = events.discrete_cost.bs + events.discrete_cost.sbs;
    std::cout << "\noperating-cost gap (event vs fluid): "
              << TextTable::fmt(
                     fluid_op > 0.0 ? (event_op - fluid_op) / fluid_op : 0.0,
                     4)
              << "  (shrinks like 1/sqrt(S); try --scale 1000)\n\n";

    TextTable slots({"slot", "requests", "hits", "hit%", "p99 delay",
                     "backhaul"});
    const std::size_t shown = std::min<std::size_t>(8, events.slots.size());
    for (std::size_t t = 0; t < shown; ++t) {
      const auto& slot = events.slots[t];
      slots.add_row({TextTable::fmt(static_cast<std::int64_t>(t)),
                     TextTable::fmt(static_cast<std::int64_t>(slot.requests)),
                     TextTable::fmt(static_cast<std::int64_t>(slot.sbs_hits)),
                     TextTable::fmt(100.0 * slot.hit_ratio(), 1),
                     TextTable::fmt(slot.p99_delay, 6),
                     TextTable::fmt(slot.backhaul_bytes)});
    }
    slots.print(std::cout);
    if (events.slots.size() > shown) {
      std::cout << "... (" << events.slots.size() - shown << " more slots)\n";
    }

    std::remove(trace_path.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
