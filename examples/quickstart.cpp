// Quickstart: build a small 5G edge-caching scenario, run the offline
// optimum, the online algorithms (RHC / CHC / AFHC) and the LRFU baseline,
// and print the cost comparison.
//
//   ./quickstart [--slots N] [--contents K] [--beta B] [--window W]
//                [--eta E] [--seed S]
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  try {
    const CliFlags flags(argc, argv);

    sim::ExperimentConfig config;
    config.scenario.horizon =
        static_cast<std::size_t>(flags.get_int("slots", 40));
    config.scenario.num_contents =
        static_cast<std::size_t>(flags.get_int("contents", 20));
    config.scenario.classes_per_sbs =
        static_cast<std::size_t>(flags.get_int("classes", 15));
    config.scenario.cache_capacity =
        static_cast<std::size_t>(flags.get_int("capacity", 5));
    config.scenario.beta = flags.get_double("beta", 50.0);
    config.scenario.seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 7));
    config.window = static_cast<std::size_t>(flags.get_int("window", 8));
    config.commit = static_cast<std::size_t>(flags.get_int("commit", 4));
    config.eta = flags.get_double("eta", 0.1);
    flags.require_all_consumed();

    std::cout << "Joint online edge caching + load balancing (ICDCS'19)\n"
              << "scenario: K=" << config.scenario.num_contents
              << " classes=" << config.scenario.classes_per_sbs
              << " T=" << config.scenario.horizon
              << " C=" << config.scenario.cache_capacity
              << " B=" << config.scenario.bandwidth
              << " beta=" << config.scenario.beta
              << " w=" << config.window << " eta=" << config.eta << "\n\n";

    const auto outcomes = sim::run_schemes(config);

    const double offline_cost =
        sim::find_outcome(outcomes, "Offline").total_cost();
    TextTable table({"scheme", "total", "BS op", "SBS op", "replacement",
                     "#repl", "vs offline"});
    for (const auto& outcome : outcomes) {
      table.add_row({outcome.name, TextTable::fmt(outcome.total_cost()),
                     TextTable::fmt(outcome.cost.bs),
                     TextTable::fmt(outcome.cost.sbs),
                     TextTable::fmt(outcome.cost.replacement),
                     TextTable::fmt(static_cast<std::int64_t>(
                         outcome.replacements)),
                     TextTable::fmt(outcome.total_cost() / offline_cost, 3)});
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
