// Video CDN over a simulated day.
//
// The paper's introduction motivates edge caching with live/on-demand video
// traffic: strong diurnal cycles create off-peak windows in which cache
// updates are cheap relative to the traffic they later absorb. This example
// builds a 24x-slots "day" with a diurnal demand envelope, runs RHC against
// LRFU and the classic policies, saves the generated trace to CSV (so the
// exact workload can be replayed or inspected), and prints an hour-by-hour
// breakdown of where RHC schedules its cache updates.
//
//   ./video_cdn_day [--hours H] [--slots-per-hour S] [--beta B]
//                   [--trace PATH]
#include <iostream>

#include "online/baselines.hpp"
#include "online/rhc.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/predictor.hpp"
#include "workload/scenario.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  try {
    const CliFlags flags(argc, argv);
    const auto hours = static_cast<std::size_t>(flags.get_int("hours", 24));
    const auto slots_per_hour =
        static_cast<std::size_t>(flags.get_int("slots-per-hour", 2));
    const double beta = flags.get_double("beta", 25.0);
    const std::string trace_path =
        flags.get_string("trace", "/tmp/video_cdn_day_trace.csv");
    flags.require_all_consumed();

    workload::PaperScenario scenario;
    scenario.horizon = hours * slots_per_hour;
    scenario.num_contents = 24;   // video chunks in rotation
    scenario.classes_per_sbs = 20;
    scenario.cache_capacity = 4;
    scenario.bandwidth = 20.0;
    scenario.beta = beta;
    scenario.workload.density_max = 3.0;
    scenario.workload.diurnal_amplitude = 0.8;
    scenario.workload.diurnal_period = hours * slots_per_hour;
    scenario.workload.rank_swaps_per_slot = 3;  // catalogue churn
    const auto instance = scenario.build();

    workload::save_trace_csv(trace_path, instance.demand);
    std::cout << "Video CDN day: " << hours << "h x " << slots_per_hour
              << " slots, catalogue " << scenario.num_contents
              << ", cache " << scenario.cache_capacity << ", beta " << beta
              << "\n" << "trace saved to " << trace_path << "\n\n";

    const workload::NoisyPredictor predictor(instance.demand, 0.1, 99);
    const sim::Simulator simulator(instance, predictor);

    online::RhcController rhc(8);
    online::LrfuController lrfu;
    online::LruController lru;
    online::LfuController lfu;

    TextTable comparison({"scheme", "total cost", "replacement cost",
                          "#repl", "offload %"});
    sim::SimulationResult rhc_result;
    for (online::Controller* controller :
         std::initializer_list<online::Controller*>{&rhc, &lrfu, &lru,
                                                    &lfu}) {
      const auto result = simulator.run(*controller);
      if (controller == &rhc) rhc_result = result;
      comparison.add_row(
          {result.controller, TextTable::fmt(result.total_cost()),
           TextTable::fmt(result.total.replacement),
           TextTable::fmt(static_cast<std::int64_t>(
               result.total_replacements)),
           TextTable::fmt(100.0 * result.offload_ratio(), 1)});
    }
    comparison.print(std::cout);

    // Hour-by-hour view: demand level vs RHC's update schedule.
    std::cout << "\nRHC update timing over the day (demand envelope vs "
                 "where RHC schedules its few cache updates):\n";
    TextTable hourly({"hour", "mean demand", "cache updates", "BS cost"});
    for (std::size_t h = 0; h < hours; ++h) {
      double demand = 0.0, bs_cost = 0.0;
      std::size_t updates = 0;
      for (std::size_t s = 0; s < slots_per_hour; ++s) {
        const auto& record = rhc_result.slots[h * slots_per_hour + s];
        demand += record.demand_total;
        bs_cost += record.cost.bs;
        updates += record.replacements;
      }
      hourly.add_row({TextTable::fmt(static_cast<std::int64_t>(h)),
                      TextTable::fmt(demand / slots_per_hour, 1),
                      TextTable::fmt(static_cast<std::int64_t>(updates)),
                      TextTable::fmt(bs_cost, 1)});
    }
    hourly.print(std::cout);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
