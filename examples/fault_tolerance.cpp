// Fault tolerance: play RHC through the fault-injection harness — SBS
// outages, predictor blackouts, corrupted and spiked demand — wrapped in the
// RobustController fallback chain, and print the degradation report against
// a clean reference run.
//
//   ./fault_tolerance [--slots N] [--window W] [--eta E] [--seed S]
//                     [--outage-prob P] [--blackout-prob P]
//                     [--corrupt-prob P] [--spike-prob P]
#include <iostream>

#include "online/rhc.hpp"
#include "online/robust_controller.hpp"
#include "sim/robustness_report.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/predictor.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mdo;
  try {
    const CliFlags flags(argc, argv);

    workload::PaperScenario scenario;
    scenario.horizon = static_cast<std::size_t>(flags.get_int("slots", 200));
    scenario.num_contents = 20;
    scenario.classes_per_sbs = 12;
    scenario.beta = 50.0;
    scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    const auto window = static_cast<std::size_t>(flags.get_int("window", 8));
    const double eta = flags.get_double("eta", 0.1);

    sim::FaultInjectionConfig fault_config;
    fault_config.seed = scenario.seed + 1;
    fault_config.outage_probability = flags.get_double("outage-prob", 0.02);
    fault_config.outage_duration = 3;
    fault_config.blackout_probability =
        flags.get_double("blackout-prob", 0.05);
    fault_config.corruption_probability =
        flags.get_double("corrupt-prob", 0.05);
    fault_config.spike_probability = flags.get_double("spike-prob", 0.03);
    fault_config.spike_factor = 4.0;
    // One guaranteed hard stretch on top of the random schedule.
    fault_config.outages.push_back({0, {40, 48}});
    fault_config.predictor_blackouts.push_back({60, 70});
    fault_config.corrupted_slots.push_back(90);
    flags.require_all_consumed();

    const model::ProblemInstance instance = scenario.build();
    const workload::NoisyPredictor predictor(instance.demand, eta,
                                             scenario.seed + 2);

    // Clean reference run.
    online::RhcController clean_rhc(window);
    const auto clean =
        sim::Simulator(instance, predictor).run(clean_rhc);

    // Faulted run through the fallback chain.
    const sim::FaultInjector injector(fault_config);
    sim::SimulatorOptions options;
    options.faults = &injector;
    online::RhcController rhc(window);
    online::RobustController robust(rhc);
    const auto faulted =
        sim::Simulator(instance, predictor, options).run(robust);

    const auto report =
        sim::build_robustness_report(faulted, robust, &clean);
    std::cout << report.format() << "\n";
    std::cout << "offload ratio: clean " << clean.offload_ratio()
              << ", faulted " << faulted.offload_ratio() << "\n";
    std::cout << "full-solve ratio under faults: "
              << report.full_solve_ratio() << "\n";
    for (const auto& event : robust.events()) {
      if (event.slot > 95) continue;  // keep the listing short
      std::cout << "  slot " << event.slot << ": "
                << online::to_string(event.kind) << " -> served at level '"
                << online::to_string(event.level) << "' (" << event.detail
                << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
