#!/bin/sh
# Regenerates every experiment in DESIGN.md §5 (default T=50; pass-through
# of the paper-scale run: add --slots 100 to each line).
set -x
cd "$(dirname "$0")/.."
./build/bench/bench_headline_table          > results/headline.txt 2>&1
./build/bench/bench_fig2_beta    --csv results/fig2.csv > results/fig2.txt 2>&1
./build/bench/bench_fig3_window  --csv results/fig3.csv > results/fig3.txt 2>&1
./build/bench/bench_fig4_bandwidth --csv results/fig4.csv > results/fig4.txt 2>&1
./build/bench/bench_fig5_noise   --csv results/fig5.csv > results/fig5.txt 2>&1
./build/bench/bench_ablation                > results/ablation.txt 2>&1
./build/bench/bench_competitive_ratio       > results/competitive_ratio.txt 2>&1
./build/bench/bench_solvers                 > results/solvers.txt 2>&1
./build/bench/bench_hotpath --json BENCH_hotpath.json > results/hotpath.txt 2>&1
./build/bench/bench_scaling --json BENCH_scaling.json > results/scaling.txt 2>&1
./build/bench/bench_deadline --json results/BENCH_deadline.json > results/deadline.txt 2>&1
./build/bench/bench_events --rss-slots 1500 --rss-scale 250 --min-requests 10000000 --json results/BENCH_events.json > results/events.txt 2>&1
./build/bench/bench_shard --json results/BENCH_shard.json > results/shard.txt 2>&1
# E15 — compact-mu byte accounting + p99 budget (two-way bitwise guard:
# dense vs sparse, whose mu always uses the compact active-coordinate
# layout; >= 2x resident-mu + kEnd-wire byte reduction required at the
# largest K).
./build/bench/bench_scaling --ks 10000 --require-bytes-reduction 2 --p99-budget-ms 2000 --json results/BENCH_compact_mu.json > results/compact_mu.txt 2>&1
# E16 — collaborative SBS-to-SBS caching: cooperative vs non-cooperative on
# ring/grid/geo topologies; fails unless cooperation strictly helps on every
# topology and the zero-bandwidth arms agree bit for bit.
./build/bench/bench_collab --require-coop-improvement --json results/BENCH_collab.json > results/collab.txt 2>&1
echo ALL_BENCHES_DONE
