# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_mcmf[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_first_order[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_caching[1]_include.cmake")
include("/root/repo/build/tests/test_load_balancing[1]_include.cmake")
include("/root/repo/build/tests/test_primal_dual[1]_include.cmake")
include("/root/repo/build/tests/test_rounding[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_overlap[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
