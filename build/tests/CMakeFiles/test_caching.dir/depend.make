# Empty dependencies file for test_caching.
# This may be replaced when dependencies are built.
