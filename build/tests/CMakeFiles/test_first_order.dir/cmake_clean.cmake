file(REMOVE_RECURSE
  "CMakeFiles/test_first_order.dir/test_first_order.cpp.o"
  "CMakeFiles/test_first_order.dir/test_first_order.cpp.o.d"
  "test_first_order"
  "test_first_order.pdb"
  "test_first_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_first_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
