
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_projection.cpp" "tests/CMakeFiles/test_projection.dir/test_projection.cpp.o" "gcc" "tests/CMakeFiles/test_projection.dir/test_projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mdo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/mdo_online.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/overlap/CMakeFiles/mdo_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mdo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
