file(REMOVE_RECURSE
  "CMakeFiles/test_primal_dual.dir/test_primal_dual.cpp.o"
  "CMakeFiles/test_primal_dual.dir/test_primal_dual.cpp.o.d"
  "test_primal_dual"
  "test_primal_dual.pdb"
  "test_primal_dual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primal_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
