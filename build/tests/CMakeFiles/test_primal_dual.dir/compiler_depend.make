# Empty compiler generated dependencies file for test_primal_dual.
# This may be replaced when dependencies are built.
