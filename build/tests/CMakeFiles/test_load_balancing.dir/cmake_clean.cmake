file(REMOVE_RECURSE
  "CMakeFiles/test_load_balancing.dir/test_load_balancing.cpp.o"
  "CMakeFiles/test_load_balancing.dir/test_load_balancing.cpp.o.d"
  "test_load_balancing"
  "test_load_balancing.pdb"
  "test_load_balancing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
