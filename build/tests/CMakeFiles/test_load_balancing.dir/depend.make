# Empty dependencies file for test_load_balancing.
# This may be replaced when dependencies are built.
