file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_noise.dir/bench_fig5_noise.cpp.o"
  "CMakeFiles/bench_fig5_noise.dir/bench_fig5_noise.cpp.o.d"
  "bench_fig5_noise"
  "bench_fig5_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
