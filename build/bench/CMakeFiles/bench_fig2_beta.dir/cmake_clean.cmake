file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_beta.dir/bench_fig2_beta.cpp.o"
  "CMakeFiles/bench_fig2_beta.dir/bench_fig2_beta.cpp.o.d"
  "bench_fig2_beta"
  "bench_fig2_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
