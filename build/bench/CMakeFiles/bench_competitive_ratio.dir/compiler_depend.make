# Empty compiler generated dependencies file for bench_competitive_ratio.
# This may be replaced when dependencies are built.
