file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_table.dir/bench_headline_table.cpp.o"
  "CMakeFiles/bench_headline_table.dir/bench_headline_table.cpp.o.d"
  "bench_headline_table"
  "bench_headline_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
