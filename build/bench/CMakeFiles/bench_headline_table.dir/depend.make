# Empty dependencies file for bench_headline_table.
# This may be replaced when dependencies are built.
