file(REMOVE_RECURSE
  "CMakeFiles/multi_sbs_offloading.dir/multi_sbs_offloading.cpp.o"
  "CMakeFiles/multi_sbs_offloading.dir/multi_sbs_offloading.cpp.o.d"
  "multi_sbs_offloading"
  "multi_sbs_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sbs_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
