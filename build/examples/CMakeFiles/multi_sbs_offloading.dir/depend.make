# Empty dependencies file for multi_sbs_offloading.
# This may be replaced when dependencies are built.
