# Empty compiler generated dependencies file for video_cdn_day.
# This may be replaced when dependencies are built.
