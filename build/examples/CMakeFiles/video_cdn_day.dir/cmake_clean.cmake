file(REMOVE_RECURSE
  "CMakeFiles/video_cdn_day.dir/video_cdn_day.cpp.o"
  "CMakeFiles/video_cdn_day.dir/video_cdn_day.cpp.o.d"
  "video_cdn_day"
  "video_cdn_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_cdn_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
