file(REMOVE_RECURSE
  "CMakeFiles/overlap_cell.dir/overlap_cell.cpp.o"
  "CMakeFiles/overlap_cell.dir/overlap_cell.cpp.o.d"
  "overlap_cell"
  "overlap_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
