# Empty compiler generated dependencies file for overlap_cell.
# This may be replaced when dependencies are built.
