# Empty dependencies file for mdo_workload.
# This may be replaced when dependencies are built.
