
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ema_predictor.cpp" "src/workload/CMakeFiles/mdo_workload.dir/ema_predictor.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/ema_predictor.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/mdo_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/predictor.cpp" "src/workload/CMakeFiles/mdo_workload.dir/predictor.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/predictor.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/mdo_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/mdo_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/workload/CMakeFiles/mdo_workload.dir/zipf.cpp.o" "gcc" "src/workload/CMakeFiles/mdo_workload.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
