file(REMOVE_RECURSE
  "CMakeFiles/mdo_workload.dir/ema_predictor.cpp.o"
  "CMakeFiles/mdo_workload.dir/ema_predictor.cpp.o.d"
  "CMakeFiles/mdo_workload.dir/generator.cpp.o"
  "CMakeFiles/mdo_workload.dir/generator.cpp.o.d"
  "CMakeFiles/mdo_workload.dir/predictor.cpp.o"
  "CMakeFiles/mdo_workload.dir/predictor.cpp.o.d"
  "CMakeFiles/mdo_workload.dir/scenario.cpp.o"
  "CMakeFiles/mdo_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/mdo_workload.dir/trace_io.cpp.o"
  "CMakeFiles/mdo_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/mdo_workload.dir/zipf.cpp.o"
  "CMakeFiles/mdo_workload.dir/zipf.cpp.o.d"
  "libmdo_workload.a"
  "libmdo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
