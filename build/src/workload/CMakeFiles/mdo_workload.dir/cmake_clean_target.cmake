file(REMOVE_RECURSE
  "libmdo_workload.a"
)
