file(REMOVE_RECURSE
  "libmdo_overlap.a"
)
