# Empty dependencies file for mdo_overlap.
# This may be replaced when dependencies are built.
