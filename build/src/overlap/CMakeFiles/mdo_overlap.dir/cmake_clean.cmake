file(REMOVE_RECURSE
  "CMakeFiles/mdo_overlap.dir/model.cpp.o"
  "CMakeFiles/mdo_overlap.dir/model.cpp.o.d"
  "CMakeFiles/mdo_overlap.dir/p2.cpp.o"
  "CMakeFiles/mdo_overlap.dir/p2.cpp.o.d"
  "CMakeFiles/mdo_overlap.dir/primal_dual.cpp.o"
  "CMakeFiles/mdo_overlap.dir/primal_dual.cpp.o.d"
  "libmdo_overlap.a"
  "libmdo_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
