file(REMOVE_RECURSE
  "CMakeFiles/mdo_util.dir/cli.cpp.o"
  "CMakeFiles/mdo_util.dir/cli.cpp.o.d"
  "CMakeFiles/mdo_util.dir/csv.cpp.o"
  "CMakeFiles/mdo_util.dir/csv.cpp.o.d"
  "CMakeFiles/mdo_util.dir/logging.cpp.o"
  "CMakeFiles/mdo_util.dir/logging.cpp.o.d"
  "CMakeFiles/mdo_util.dir/rng.cpp.o"
  "CMakeFiles/mdo_util.dir/rng.cpp.o.d"
  "CMakeFiles/mdo_util.dir/table.cpp.o"
  "CMakeFiles/mdo_util.dir/table.cpp.o.d"
  "libmdo_util.a"
  "libmdo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
