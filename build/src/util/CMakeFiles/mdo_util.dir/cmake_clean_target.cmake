file(REMOVE_RECURSE
  "libmdo_util.a"
)
