# Empty dependencies file for mdo_util.
# This may be replaced when dependencies are built.
