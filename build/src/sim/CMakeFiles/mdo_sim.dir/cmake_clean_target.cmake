file(REMOVE_RECURSE
  "libmdo_sim.a"
)
