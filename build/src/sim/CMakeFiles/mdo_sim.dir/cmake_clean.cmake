file(REMOVE_RECURSE
  "CMakeFiles/mdo_sim.dir/experiment.cpp.o"
  "CMakeFiles/mdo_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/mdo_sim.dir/replication.cpp.o"
  "CMakeFiles/mdo_sim.dir/replication.cpp.o.d"
  "CMakeFiles/mdo_sim.dir/simulator.cpp.o"
  "CMakeFiles/mdo_sim.dir/simulator.cpp.o.d"
  "libmdo_sim.a"
  "libmdo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
