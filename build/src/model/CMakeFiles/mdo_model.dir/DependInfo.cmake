
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/costs.cpp" "src/model/CMakeFiles/mdo_model.dir/costs.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/costs.cpp.o.d"
  "/root/repo/src/model/decision.cpp" "src/model/CMakeFiles/mdo_model.dir/decision.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/decision.cpp.o.d"
  "/root/repo/src/model/demand.cpp" "src/model/CMakeFiles/mdo_model.dir/demand.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/demand.cpp.o.d"
  "/root/repo/src/model/feasibility.cpp" "src/model/CMakeFiles/mdo_model.dir/feasibility.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/feasibility.cpp.o.d"
  "/root/repo/src/model/instance.cpp" "src/model/CMakeFiles/mdo_model.dir/instance.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/instance.cpp.o.d"
  "/root/repo/src/model/network.cpp" "src/model/CMakeFiles/mdo_model.dir/network.cpp.o" "gcc" "src/model/CMakeFiles/mdo_model.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
