file(REMOVE_RECURSE
  "CMakeFiles/mdo_model.dir/costs.cpp.o"
  "CMakeFiles/mdo_model.dir/costs.cpp.o.d"
  "CMakeFiles/mdo_model.dir/decision.cpp.o"
  "CMakeFiles/mdo_model.dir/decision.cpp.o.d"
  "CMakeFiles/mdo_model.dir/demand.cpp.o"
  "CMakeFiles/mdo_model.dir/demand.cpp.o.d"
  "CMakeFiles/mdo_model.dir/feasibility.cpp.o"
  "CMakeFiles/mdo_model.dir/feasibility.cpp.o.d"
  "CMakeFiles/mdo_model.dir/instance.cpp.o"
  "CMakeFiles/mdo_model.dir/instance.cpp.o.d"
  "CMakeFiles/mdo_model.dir/network.cpp.o"
  "CMakeFiles/mdo_model.dir/network.cpp.o.d"
  "libmdo_model.a"
  "libmdo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
