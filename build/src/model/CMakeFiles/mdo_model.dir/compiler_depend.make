# Empty compiler generated dependencies file for mdo_model.
# This may be replaced when dependencies are built.
