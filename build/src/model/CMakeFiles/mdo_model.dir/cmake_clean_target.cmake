file(REMOVE_RECURSE
  "libmdo_model.a"
)
