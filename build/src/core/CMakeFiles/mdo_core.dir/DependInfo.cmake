
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/caching.cpp" "src/core/CMakeFiles/mdo_core.dir/caching.cpp.o" "gcc" "src/core/CMakeFiles/mdo_core.dir/caching.cpp.o.d"
  "/root/repo/src/core/exact_dp.cpp" "src/core/CMakeFiles/mdo_core.dir/exact_dp.cpp.o" "gcc" "src/core/CMakeFiles/mdo_core.dir/exact_dp.cpp.o.d"
  "/root/repo/src/core/load_balancing.cpp" "src/core/CMakeFiles/mdo_core.dir/load_balancing.cpp.o" "gcc" "src/core/CMakeFiles/mdo_core.dir/load_balancing.cpp.o.d"
  "/root/repo/src/core/primal_dual.cpp" "src/core/CMakeFiles/mdo_core.dir/primal_dual.cpp.o" "gcc" "src/core/CMakeFiles/mdo_core.dir/primal_dual.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/mdo_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/mdo_core.dir/rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mdo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdo_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
