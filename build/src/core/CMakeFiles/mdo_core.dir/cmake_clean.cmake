file(REMOVE_RECURSE
  "CMakeFiles/mdo_core.dir/caching.cpp.o"
  "CMakeFiles/mdo_core.dir/caching.cpp.o.d"
  "CMakeFiles/mdo_core.dir/exact_dp.cpp.o"
  "CMakeFiles/mdo_core.dir/exact_dp.cpp.o.d"
  "CMakeFiles/mdo_core.dir/load_balancing.cpp.o"
  "CMakeFiles/mdo_core.dir/load_balancing.cpp.o.d"
  "CMakeFiles/mdo_core.dir/primal_dual.cpp.o"
  "CMakeFiles/mdo_core.dir/primal_dual.cpp.o.d"
  "CMakeFiles/mdo_core.dir/rounding.cpp.o"
  "CMakeFiles/mdo_core.dir/rounding.cpp.o.d"
  "libmdo_core.a"
  "libmdo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
