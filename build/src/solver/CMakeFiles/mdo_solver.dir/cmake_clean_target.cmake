file(REMOVE_RECURSE
  "libmdo_solver.a"
)
