file(REMOVE_RECURSE
  "CMakeFiles/mdo_solver.dir/first_order.cpp.o"
  "CMakeFiles/mdo_solver.dir/first_order.cpp.o.d"
  "CMakeFiles/mdo_solver.dir/lp.cpp.o"
  "CMakeFiles/mdo_solver.dir/lp.cpp.o.d"
  "CMakeFiles/mdo_solver.dir/mcmf.cpp.o"
  "CMakeFiles/mdo_solver.dir/mcmf.cpp.o.d"
  "CMakeFiles/mdo_solver.dir/projection.cpp.o"
  "CMakeFiles/mdo_solver.dir/projection.cpp.o.d"
  "CMakeFiles/mdo_solver.dir/subgradient.cpp.o"
  "CMakeFiles/mdo_solver.dir/subgradient.cpp.o.d"
  "libmdo_solver.a"
  "libmdo_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
