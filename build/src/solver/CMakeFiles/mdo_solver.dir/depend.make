# Empty dependencies file for mdo_solver.
# This may be replaced when dependencies are built.
