
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/first_order.cpp" "src/solver/CMakeFiles/mdo_solver.dir/first_order.cpp.o" "gcc" "src/solver/CMakeFiles/mdo_solver.dir/first_order.cpp.o.d"
  "/root/repo/src/solver/lp.cpp" "src/solver/CMakeFiles/mdo_solver.dir/lp.cpp.o" "gcc" "src/solver/CMakeFiles/mdo_solver.dir/lp.cpp.o.d"
  "/root/repo/src/solver/mcmf.cpp" "src/solver/CMakeFiles/mdo_solver.dir/mcmf.cpp.o" "gcc" "src/solver/CMakeFiles/mdo_solver.dir/mcmf.cpp.o.d"
  "/root/repo/src/solver/projection.cpp" "src/solver/CMakeFiles/mdo_solver.dir/projection.cpp.o" "gcc" "src/solver/CMakeFiles/mdo_solver.dir/projection.cpp.o.d"
  "/root/repo/src/solver/subgradient.cpp" "src/solver/CMakeFiles/mdo_solver.dir/subgradient.cpp.o" "gcc" "src/solver/CMakeFiles/mdo_solver.dir/subgradient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
