file(REMOVE_RECURSE
  "CMakeFiles/mdo_linalg.dir/lu.cpp.o"
  "CMakeFiles/mdo_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/mdo_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mdo_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mdo_linalg.dir/vec.cpp.o"
  "CMakeFiles/mdo_linalg.dir/vec.cpp.o.d"
  "libmdo_linalg.a"
  "libmdo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
