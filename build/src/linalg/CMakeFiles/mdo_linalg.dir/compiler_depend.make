# Empty compiler generated dependencies file for mdo_linalg.
# This may be replaced when dependencies are built.
