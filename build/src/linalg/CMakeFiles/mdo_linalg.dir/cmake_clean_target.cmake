file(REMOVE_RECURSE
  "libmdo_linalg.a"
)
