
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/online/baselines.cpp" "src/online/CMakeFiles/mdo_online.dir/baselines.cpp.o" "gcc" "src/online/CMakeFiles/mdo_online.dir/baselines.cpp.o.d"
  "/root/repo/src/online/chc.cpp" "src/online/CMakeFiles/mdo_online.dir/chc.cpp.o" "gcc" "src/online/CMakeFiles/mdo_online.dir/chc.cpp.o.d"
  "/root/repo/src/online/fhc.cpp" "src/online/CMakeFiles/mdo_online.dir/fhc.cpp.o" "gcc" "src/online/CMakeFiles/mdo_online.dir/fhc.cpp.o.d"
  "/root/repo/src/online/offline_controller.cpp" "src/online/CMakeFiles/mdo_online.dir/offline_controller.cpp.o" "gcc" "src/online/CMakeFiles/mdo_online.dir/offline_controller.cpp.o.d"
  "/root/repo/src/online/rhc.cpp" "src/online/CMakeFiles/mdo_online.dir/rhc.cpp.o" "gcc" "src/online/CMakeFiles/mdo_online.dir/rhc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mdo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mdo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
