file(REMOVE_RECURSE
  "CMakeFiles/mdo_online.dir/baselines.cpp.o"
  "CMakeFiles/mdo_online.dir/baselines.cpp.o.d"
  "CMakeFiles/mdo_online.dir/chc.cpp.o"
  "CMakeFiles/mdo_online.dir/chc.cpp.o.d"
  "CMakeFiles/mdo_online.dir/fhc.cpp.o"
  "CMakeFiles/mdo_online.dir/fhc.cpp.o.d"
  "CMakeFiles/mdo_online.dir/offline_controller.cpp.o"
  "CMakeFiles/mdo_online.dir/offline_controller.cpp.o.d"
  "CMakeFiles/mdo_online.dir/rhc.cpp.o"
  "CMakeFiles/mdo_online.dir/rhc.cpp.o.d"
  "libmdo_online.a"
  "libmdo_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdo_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
