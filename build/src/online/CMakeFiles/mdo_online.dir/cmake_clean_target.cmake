file(REMOVE_RECURSE
  "libmdo_online.a"
)
