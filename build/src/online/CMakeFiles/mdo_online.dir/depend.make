# Empty dependencies file for mdo_online.
# This may be replaced when dependencies are built.
